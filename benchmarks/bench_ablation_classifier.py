"""A3 — ablation: forum-classifier robustness vs report vagueness.

The §4 study classified free-format posts; its reliability depends on
how explicitly users describe failures.  This bench sweeps the corpus
noise level (fraction of vague phrasings) and measures detection
precision/recall and per-field accuracy against generation ground
truth.
"""

from repro.analysis.tables import render_table
from repro.forum.classifier import score_against_ground_truth
from repro.forum.corpus import CorpusConfig, generate_corpus

NOISE_LEVELS = [0.0, 0.25, 0.5, 0.75, 1.0]


def test_ablation_classifier_noise(benchmark):
    def sweep():
        out = []
        for noise in NOISE_LEVELS:
            posts = generate_corpus(
                CorpusConfig(failure_reports=533, noise_level=noise), seed=2003
            )
            out.append((noise, score_against_ground_truth(posts)))
        return out

    results = benchmark(sweep)

    rows = [
        (
            f"{noise:.2f}",
            f"{scores['precision']:.3f}",
            f"{scores['recall']:.3f}",
            f"{scores['type_accuracy']:.3f}",
            f"{scores['recovery_accuracy']:.3f}",
        )
        for noise, scores in results
    ]
    print()
    print(
        "Ablation: classifier scores vs corpus noise level\n"
        + render_table(
            ("Noise", "Precision", "Recall", "Type acc", "Recovery acc"), rows
        )
    )
    benchmark.extra_info["results"] = rows

    by_noise = dict(results)
    # Recall degrades monotonically-ish with vagueness but stays usable;
    # precision is insensitive to vagueness (it is about chatter).
    assert by_noise[0.0]["recall"] >= by_noise[1.0]["recall"]
    assert by_noise[1.0]["recall"] > 0.85
    assert by_noise[1.0]["precision"] > 0.85
    # Fields of *detected* reports stay accurate: vagueness mostly costs
    # detection, not labelling.
    assert by_noise[1.0]["type_accuracy"] > 0.95
