"""Live-mode overhead gate — the telemetry plane must be near-free.

The live telemetry plane (``repro.observability.live``) promises to be
a pure observer: workers flush *delta* snapshots on a wall-clock
throttle riding an existing sim event, so enabling ``--live`` must not
change results (pinned by tests/test_live_telemetry.py) *and* must not
meaningfully change cost (pinned here).

The harness interleaves off/on arms per repeat and gates on best-of
CPU seconds (``time.process_time``), which ignores scheduler
interference from noisy CI neighbours.  The measured overhead is
merged into ``BENCH_campaign.json`` under ``live_overhead`` so the
committed baseline documents the cost of observability alongside the
raw pipeline numbers.

Output can be redirected with ``BENCH_LIVE_OUT``; the default merges
into the repository's committed baseline in place.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.config import CampaignConfig
from repro.experiments.perf import measure_live_overhead

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED_BASELINE = REPO_ROOT / "BENCH_campaign.json"

# Hard ceiling from the acceptance bar: live mode may cost at most 2%
# CPU over the identical campaign without a live writer installed.
MAX_CPU_OVERHEAD_PERCENT = 2.0


def test_live_overhead_within_budget():
    result = measure_live_overhead(
        CampaignConfig.paper_scale(seed=2005), repeats=3
    )
    print()
    print(json.dumps(result, indent=2, sort_keys=True))

    out_path = os.environ.get(
        "BENCH_LIVE_OUT", str(COMMITTED_BASELINE)
    )
    merged = {}
    if os.path.exists(out_path):
        with open(out_path, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    merged["live_overhead"] = result
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # The on-arm must have actually streamed telemetry — a zero
    # heartbeat count would make the gate vacuous.
    assert result["heartbeats_per_run"] >= 1, result

    overhead = result["cpu_overhead_percent"]
    print(f"live-mode CPU overhead: {overhead:+.2f}% (budget <= "
          f"{MAX_CPU_OVERHEAD_PERCENT:.1f}%)")
    assert overhead <= MAX_CPU_OVERHEAD_PERCENT, (
        f"live telemetry costs {overhead:+.2f}% CPU, over the "
        f"{MAX_CPU_OVERHEAD_PERCENT:.1f}% budget"
    )
