"""Resume smoke — kill -9 a running mega-fleet, resume, same bits.

The durability contract of the ``workqueue`` backend: every completed
shard is committed to the cache directory (atomic tmp+rename) *before*
the worker acknowledges it, so no acknowledged work can ever be lost.
This gate proves the contract the blunt way:

1. start a sharded campaign (workqueue backend, shard cache) in its own
   process group;
2. wait until at least two shards are durably committed, then SIGKILL
   the *entire group* — coordinator and workers alike, mid-shard;
3. restart the identical campaign against the same cache with
   ``--verify``, which reruns the campaign monolithically and exits 1
   unless the resumed summary is bit-identical;
4. assert the resume actually resumed (``executor.resumed_shards_total``
   >= 1 in the report) instead of silently recomputing everything.

Small fleet on purpose: the property is about crash timing, not scale
(the scale story lives in bench_shard_smoke / BENCH_megafleet.json).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

PHONES = 800
MONTHS = 0.25
SHARDS = 8
WORKERS = 2


def _megafleet_cmd(cache_dir: str, *extra: str) -> list:
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "megafleet",
        "--phones",
        str(PHONES),
        "--months",
        str(MONTHS),
        "--shards",
        str(SHARDS),
        "--workers",
        str(WORKERS),
        "--executor",
        "workqueue",
        "--cache",
        cache_dir,
        *extra,
    ]


def test_kill9_resume_bit_identical(tmp_path):
    cache_dir = str(tmp_path / "shard-cache")
    os.makedirs(cache_dir)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")

    child = subprocess.Popen(
        _megafleet_cmd(cache_dir),
        env=env,
        cwd=str(REPO_ROOT),
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    killed = False
    try:
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            committed = sum(
                1 for n in os.listdir(cache_dir) if n.endswith(".json")
            )
            if committed >= 2 or child.poll() is not None:
                break
            time.sleep(0.01)
        if child.poll() is None:
            os.killpg(os.getpgid(child.pid), signal.SIGKILL)
            killed = True
        child.wait(timeout=60)
    finally:
        if child.poll() is None:
            child.kill()

    survivors = sorted(
        n for n in os.listdir(cache_dir) if n.endswith(".json")
    )
    assert survivors, "no shard was committed before the kill"
    print()
    print(
        f"killed mid-run: {killed} "
        f"({len(survivors)}/{SHARDS} shards committed at kill time)"
    )

    report_path = str(tmp_path / "resume-report.json")
    resumed = subprocess.run(
        _megafleet_cmd(cache_dir, "--verify", "--output", report_path),
        env=env,
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
        timeout=600,
    )
    print(resumed.stdout)
    # --verify exits 1 unless the resumed summary is bit-identical to a
    # fresh monolithic run of the same campaign.
    assert resumed.returncode == 0, resumed.stderr

    with open(report_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    assert report["verified"] is True
    assert report["executor"] == "workqueue"
    resumed_shards = report["counters"]["executor.resumed_shards_total"]
    assert resumed_shards >= 1, report["counters"]
    print(
        f"resumed {resumed_shards} committed shards, "
        f"verified bit-identical to the monolithic run"
    )
