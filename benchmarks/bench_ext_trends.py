"""EXT — temporal structure: diurnal failure profile and campaign trend.

Rephrases the paper's real-time-activity finding temporally (failures
track usage across the day) and checks the campaign for reliability
drift (fixed firmware -> flat month-over-month rate).
"""

from repro.analysis.coalescence import hl_events_from_study
from repro.analysis.tables import render_table
from repro.analysis.trends import compute_trends


def test_ext_temporal_structure(benchmark, campaign):
    events = hl_events_from_study(campaign.report.study)
    trends = benchmark(compute_trends, campaign.dataset, events)

    hours = sorted(trends.hourly_percent)
    rows = [
        (f"{hour:02d}:00", f"{trends.hourly_percent[hour]:.1f}")
        for hour in hours
    ]
    print()
    print(
        "Diurnal failure profile (% of HL events per hour of day)\n"
        + render_table(("Hour", "%"), rows)
    )
    waking = trends.waking_share(8, 23)
    uniform = 100.0 * 15 / 24
    print(
        f"\nwaking-hours share (08-23): {waking:.1f}% "
        f"(uniform would be {uniform:.1f}%); peak hour: {trends.peak_hour:02d}:00"
    )
    monthly_rows = [
        (m.month_index, f"{m.observed_hours:.0f}", m.failures, f"{m.rate_per_khr:.2f}")
        for m in trends.monthly
        if m.observed_hours > 100
    ]
    print()
    print(
        "Month-over-month failure rate\n"
        + render_table(("Month", "Phone-hours", "Failures", "Rate/1000h"), monthly_rows)
    )
    slope = trends.trend_slope_per_month()
    print(f"\ntrend slope: {slope:+.3f} per 1000 h per month (flat = healthy)")
    benchmark.extra_info["waking_share"] = round(waking, 1)
    benchmark.extra_info["slope"] = round(slope, 4)

    # Failures track usage across the day...
    assert waking > uniform
    assert 8 <= trends.peak_hour < 23
    # ...and the campaign shows no reliability drift.
    mid_rates = [
        m.rate_per_khr for m in trends.monthly if m.observed_hours > 2000
    ]
    mean_rate = sum(mid_rates) / len(mid_rates)
    assert abs(slope) < 0.1 * mean_rate
