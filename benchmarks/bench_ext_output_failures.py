"""EXT — the §7 future-work extension: output-failure capture.

The paper's conclusion: "Future effort will focus on ... enhancing the
logging mechanism to enable capturing output failures (this may require
involvement of users)."  This bench measures the implemented extension:

* how many user reports the campaign collects, and the implied (lower
  bound) output-failure interval;
* footnote 5's hypothesis — user-visible output failures correlate with
  *panics* far above chance;
* a compliance sweep: how fast the captured rate collapses as users get
  lazier — quantifying the unreliable-user problem that made the paper
  defer this feature.
"""

from repro.analysis.output_failures import compute_output_failures
from repro.analysis.tables import render_table
from repro.core.clock import MONTH
from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.phone.fleet import FleetConfig

COMPLIANCE_LEVELS = [1.0, 0.5, 0.2, 0.05]


def test_ext_output_failure_reports(benchmark, campaign):
    stats = benchmark(compute_output_failures, campaign.dataset)

    truth = campaign.ground_truth
    print()
    print("Output-failure extension (default per-user compliance):")
    print(f"  user reports collected:        {stats.report_count}")
    print(f"  visible misbehaviors (truth):  {truth['misbehaviors_perceived']:.0f}")
    print(
        "  capture fraction:              "
        f"{stats.report_count / max(truth['misbehaviors_perceived'], 1):.2f}"
    )
    print(
        f"  reported-failure interval:     {stats.report_interval_days:.0f} days "
        "(lower bound on the true output-failure rate)"
    )
    print(
        f"  reports with a panic in +-5min: {100 * stats.panic_correlated_fraction:.1f}% "
        f"(chance: {100 * stats.chance_fraction:.3f}%, "
        f"lift {stats.correlation_lift:.0f}x)"
    )
    benchmark.extra_info["reports"] = stats.report_count
    benchmark.extra_info["lift"] = round(stats.correlation_lift, 1)

    # Reports are a strict lower bound on the ground truth...
    assert stats.report_count <= truth["misbehaviors_perceived"]
    # ...and footnote 5 holds: panic correlation far above chance.
    assert stats.correlation_lift > 10.0


def test_ext_compliance_sweep(benchmark):
    """How report capture degrades with user laziness (small campaign)."""

    def sweep():
        out = []
        for compliance in COMPLIANCE_LEVELS:
            fleet = FleetConfig(
                phone_count=8,
                duration=6 * MONTH,
                enroll_fraction_min=0.0,
                enroll_fraction_max=0.1,
                report_compliance_override=compliance,
            )
            result = run_campaign(CampaignConfig(fleet=fleet, seed=77))
            stats = compute_output_failures(result.dataset)
            truth = result.ground_truth
            out.append(
                (
                    compliance,
                    stats.report_count,
                    truth["misbehaviors_perceived"],
                )
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (
            f"{compliance:.2f}",
            reports,
            f"{misbehaviors:.0f}",
            f"{reports / max(misbehaviors, 1):.2f}",
        )
        for compliance, reports, misbehaviors in results
    ]
    print()
    print(
        "Compliance sweep (8 phones, 6 months)\n"
        + render_table(
            ("Compliance", "Reports", "Visible misbehaviors", "Capture"), rows
        )
    )
    benchmark.extra_info["results"] = rows

    counts = [reports for _c, reports, _m in results]
    # Capture degrades monotonically with compliance.
    assert counts == sorted(counts, reverse=True)
    assert counts[0] > 3 * max(counts[-1], 1)
