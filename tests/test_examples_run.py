"""Every example script must run cleanly (the quickest configuration)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

#: (script, extra args) — args keep the slow ones quick for CI.
EXAMPLES = [
    ("quickstart.py", []),
    ("forum_study.py", ["--reports", "120"]),
    ("single_phone_anatomy.py", []),
    ("memory_leak_anatomy.py", []),
    ("viewsrv_starvation.py", []),
    ("what_if_fixes.py", ["--phones", "2", "--months", "1"]),
    ("dependability_deep_dive.py", ["--phones", "3", "--months", "2"]),
    (
        "seed_sweep.py",
        ["--phones", "2", "--months", "1", "--seeds", "5,6", "--workers", "2"],
    ),
]


@pytest.mark.parametrize("script,args", EXAMPLES, ids=lambda v: str(v))
def test_example_runs(script, args):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} produced no output"


def test_full_reproduction_help():
    """The heavyweight example at least parses its CLI."""
    path = os.path.join(EXAMPLES_DIR, "full_reproduction.py")
    result = subprocess.run(
        [sys.executable, path, "--help"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "--seed" in result.stdout


def test_generate_experiments_report_importable():
    """The report generator is import-safe (execution is the slow path)."""
    path = os.path.join(EXAMPLES_DIR, "generate_experiments_report.py")
    result = subprocess.run(
        [
            sys.executable,
            "-c",
            "import runpy, sys; sys.argv=['x']; "
            f"spec=open({path!r}).read(); compile(spec, 'gen', 'exec')",
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
