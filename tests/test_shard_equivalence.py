"""Differential oracle: sharded campaigns reproduce the monolithic run.

The whole point of :mod:`repro.experiments.shard` is that splitting one
campaign into K per-phone-range shards changes *nothing* about the
result — not one bit of the :class:`CampaignSummary`.  These tests pin
that contract against a monolithic baseline for K ∈ {1, 3, 7, 25},
through both ingest pipelines, under a process pool, through the shard
cache, and with collection-path fault injection enabled.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.ingest import PIPELINE_TEXT
from repro.core.clock import MONTH
from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.shard import (
    ShardResult,
    ShardTask,
    merge_ingest_reports,
    merge_shards,
    plan_shards,
    run_sharded_campaign,
    shard_cache,
)
from repro.experiments.summary import (
    SUMMARY_FORMAT_VERSION,
    CampaignSummary,
    headline_figures,
)
from repro.phone.fleet import FleetConfig
from repro.robustness.experiment import run_faulty_campaign
from repro.robustness.plan import FaultPlan


def make_config(seed: int = 4242) -> CampaignConfig:
    """The oracle campaign: 25 phones, 1 month, early enrollment."""
    fleet = FleetConfig(
        phone_count=25,
        duration=MONTH,
        enroll_fraction_min=0.0,
        enroll_fraction_max=0.15,
    )
    return CampaignConfig(fleet=fleet, seed=seed)


def canonical(summary_dict: dict) -> str:
    return json.dumps(summary_dict, sort_keys=True)


@pytest.fixture(scope="module")
def config() -> CampaignConfig:
    return make_config()


@pytest.fixture(scope="module")
def monolithic(config) -> CampaignSummary:
    """The batch-pipeline baseline, computed once for the module."""
    return CampaignSummary.from_result(run_campaign(config))


@pytest.mark.parametrize("shards", [1, 3, 7, 25], ids=lambda k: f"K={k}")
def test_sharded_summary_is_bit_identical(shards, config, monolithic):
    result = run_sharded_campaign(config, shards=shards)
    assert canonical(result.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )
    assert headline_figures(result.summary) == headline_figures(monolithic)
    assert result.shard_count == shards
    starts = [start for start, _stop in result.shard_ranges]
    assert starts == sorted(starts)


def test_text_pipeline_shards_match_monolithic(config, monolithic):
    """The serialize→reparse door shards identically to the fast path."""
    result = run_sharded_campaign(config, shards=3, pipeline=PIPELINE_TEXT)
    assert canonical(result.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )


def test_process_pool_shards_match_monolithic(config, monolithic):
    result = run_sharded_campaign(config, shards=4, workers=2)
    assert canonical(result.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )


def test_faulty_campaign_shards_match_monolithic(config):
    """Fault injection is per-phone-seeded, so it shards bit-for-bit:
    same summary, same quarantine accounting, in both pipelines."""
    plan = FaultPlan.mild(seed=777)
    for pipeline in ("structured", PIPELINE_TEXT):
        outcome = run_faulty_campaign(config, plan, pipeline=pipeline)
        result = run_sharded_campaign(
            config, shards=5, plan=plan, pipeline=pipeline
        )
        assert canonical(result.summary.to_dict()) == canonical(
            outcome.summary.to_dict()
        )
        assert result.ingest.quarantined == outcome.ingest["quarantined"]
        assert result.ingest.to_dict()["by_class"] == outcome.ingest["by_class"]
        assert result.ingest.to_dict()["by_phone"] == outcome.ingest["by_phone"]


def test_shard_cache_round_trip(tmp_path, config, monolithic):
    """A second sharded run is all cache hits and still bit-identical."""
    cache = shard_cache(str(tmp_path))
    first = run_sharded_campaign(config, shards=3, cache=cache)
    assert cache.misses == 3
    assert cache.hits == 0
    second = run_sharded_campaign(config, shards=3, cache=cache)
    assert cache.hits == 3
    assert canonical(second.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )
    assert canonical(first.summary.to_dict()) == canonical(
        second.summary.to_dict()
    )


def test_shard_cache_evicts_foreign_entries(tmp_path, config):
    """A summary-format payload in a shard slot is evicted as corrupt,
    not misread — the loaders' ValueError contract in action."""
    cache = shard_cache(str(tmp_path))
    shard_configs = plan_shards(config, 2)
    path = cache.path_for(shard_configs[0])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "key": path.rsplit("/", 1)[-1][: -len(".json")],
                "format_version": SUMMARY_FORMAT_VERSION,
                "summary": {"not": "a shard result"},
            },
            handle,
        )
    assert cache.get(shard_configs[0]) is None
    assert cache.evictions == 1


def test_plan_shards_tiles_exactly(config):
    for shards in (1, 2, 3, 7, 24, 25):
        configs = plan_shards(config, shards)
        assert len(configs) == shards
        expected = 0
        for shard_config in configs:
            start, stop = shard_config.fleet.phone_range
            assert start == expected
            assert stop > start
            expected = stop
        assert expected == config.fleet.phone_count
        sizes = [
            stop - start
            for start, stop in (c.fleet.phone_range for c in configs)
        ]
        assert max(sizes) - min(sizes) <= 1


def test_plan_shards_rejects_bad_plans(config):
    with pytest.raises(ValueError, match="shards must be >= 1"):
        plan_shards(config, 0)
    with pytest.raises(ValueError, match="cannot split"):
        plan_shards(config, config.fleet.phone_count + 1)
    sliced = plan_shards(config, 2)[0]
    with pytest.raises(ValueError, match="already a slice"):
        plan_shards(sliced, 2)


def test_merge_rejects_incomplete_or_overlapping_tilings(config):
    task = ShardTask()
    results = [task(c) for c in plan_shards(config, 3)]
    with pytest.raises(ValueError, match="shard ranges"):
        merge_shards(results[:-1], config)
    with pytest.raises(ValueError, match="shard ranges"):
        merge_shards(results + [results[-1]], config)
    with pytest.raises(ValueError, match="no shard results"):
        merge_shards([], config)
    full = merge_shards(results, config)
    assert full.to_dict() == merge_shards(list(reversed(results)), config).to_dict()
    assert merge_ingest_reports(results).quarantined == sum(
        r.ingest.quarantined for r in results
    )


def test_shard_result_wire_round_trip(config):
    result = ShardTask()(plan_shards(config, 25)[0])
    revived = ShardResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert revived.phone_range == result.phone_range
    assert revived.accumulator == result.accumulator
    assert revived.ground_truth == result.ground_truth
    assert revived.ingest.to_dict() == result.ingest.to_dict()


def test_shard_result_rejects_bad_payloads(config):
    result = ShardTask()(plan_shards(config, 25)[0])
    payload = result.to_dict()
    stale = dict(payload, format_version=999)
    with pytest.raises(ValueError, match="format version"):
        ShardResult.from_dict(stale)
    broken = json.loads(json.dumps(payload))
    broken["accumulator"]["format_version"] = 999
    with pytest.raises(ValueError, match="bad shard accumulator"):
        ShardResult.from_dict(broken)
    with pytest.raises((ValueError, KeyError, TypeError)):
        ShardResult.from_dict({"summary": "foreign"})
