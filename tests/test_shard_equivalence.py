"""Differential oracle: sharded campaigns reproduce the monolithic run.

The whole point of :mod:`repro.experiments.shard` is that splitting one
campaign into K per-phone-range shards changes *nothing* about the
result — not one bit of the :class:`CampaignSummary`.  These tests pin
that contract against a monolithic baseline for K ∈ {1, 3, 7, 25},
through both ingest pipelines, under a process pool, through the shard
cache, and with collection-path fault injection enabled.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.analysis.ingest import PIPELINE_TEXT
from repro.core.clock import MONTH
from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.executors import WorkQueueExecutor
from repro.experiments.shard import (
    ShardResult,
    ShardTask,
    merge_ingest_reports,
    merge_shards,
    plan_shards,
    run_sharded_campaign,
    shard_cache,
)
from repro.experiments.summary import (
    SUMMARY_FORMAT_VERSION,
    CampaignSummary,
    headline_figures,
)
from repro.phone.fleet import FleetConfig
from repro.robustness.experiment import run_faulty_campaign
from repro.robustness.plan import FaultPlan


def make_config(seed: int = 4242) -> CampaignConfig:
    """The oracle campaign: 25 phones, 1 month, early enrollment."""
    fleet = FleetConfig(
        phone_count=25,
        duration=MONTH,
        enroll_fraction_min=0.0,
        enroll_fraction_max=0.15,
    )
    return CampaignConfig(fleet=fleet, seed=seed)


def canonical(summary_dict: dict) -> str:
    return json.dumps(summary_dict, sort_keys=True)


@pytest.fixture(scope="module")
def config() -> CampaignConfig:
    return make_config()


@pytest.fixture(scope="module")
def monolithic(config) -> CampaignSummary:
    """The batch-pipeline baseline, computed once for the module."""
    return CampaignSummary.from_result(run_campaign(config))


@pytest.mark.parametrize("shards", [1, 3, 7, 25], ids=lambda k: f"K={k}")
def test_sharded_summary_is_bit_identical(shards, config, monolithic):
    result = run_sharded_campaign(config, shards=shards)
    assert canonical(result.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )
    assert headline_figures(result.summary) == headline_figures(monolithic)
    assert result.shard_count == shards
    starts = [start for start, _stop in result.shard_ranges]
    assert starts == sorted(starts)


def test_text_pipeline_shards_match_monolithic(config, monolithic):
    """The serialize→reparse door shards identically to the fast path."""
    result = run_sharded_campaign(config, shards=3, pipeline=PIPELINE_TEXT)
    assert canonical(result.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )


def test_process_pool_shards_match_monolithic(config, monolithic):
    result = run_sharded_campaign(config, shards=4, workers=2)
    assert canonical(result.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )


def test_faulty_campaign_shards_match_monolithic(config):
    """Fault injection is per-phone-seeded, so it shards bit-for-bit:
    same summary, same quarantine accounting, in both pipelines."""
    plan = FaultPlan.mild(seed=777)
    for pipeline in ("structured", PIPELINE_TEXT):
        outcome = run_faulty_campaign(config, plan, pipeline=pipeline)
        result = run_sharded_campaign(
            config, shards=5, plan=plan, pipeline=pipeline
        )
        assert canonical(result.summary.to_dict()) == canonical(
            outcome.summary.to_dict()
        )
        assert result.ingest.quarantined == outcome.ingest["quarantined"]
        assert result.ingest.to_dict()["by_class"] == outcome.ingest["by_class"]
        assert result.ingest.to_dict()["by_phone"] == outcome.ingest["by_phone"]


def test_shard_cache_round_trip(tmp_path, config, monolithic):
    """A second sharded run is all cache hits and still bit-identical."""
    cache = shard_cache(str(tmp_path))
    first = run_sharded_campaign(config, shards=3, cache=cache)
    assert cache.misses == 3
    assert cache.hits == 0
    second = run_sharded_campaign(config, shards=3, cache=cache)
    assert cache.hits == 3
    assert canonical(second.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )
    assert canonical(first.summary.to_dict()) == canonical(
        second.summary.to_dict()
    )


def test_shard_cache_evicts_foreign_entries(tmp_path, config):
    """A summary-format payload in a shard slot is evicted as corrupt,
    not misread — the loaders' ValueError contract in action."""
    cache = shard_cache(str(tmp_path))
    shard_configs = plan_shards(config, 2)
    path = cache.path_for(shard_configs[0])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "key": path.rsplit("/", 1)[-1][: -len(".json")],
                "format_version": SUMMARY_FORMAT_VERSION,
                "summary": {"not": "a shard result"},
            },
            handle,
        )
    assert cache.get(shard_configs[0]) is None
    assert cache.evictions == 1


def test_plan_shards_tiles_exactly(config):
    for shards in (1, 2, 3, 7, 24, 25):
        configs = plan_shards(config, shards)
        assert len(configs) == shards
        expected = 0
        for shard_config in configs:
            start, stop = shard_config.fleet.phone_range
            assert start == expected
            assert stop > start
            expected = stop
        assert expected == config.fleet.phone_count
        sizes = [
            stop - start
            for start, stop in (c.fleet.phone_range for c in configs)
        ]
        assert max(sizes) - min(sizes) <= 1


def test_plan_shards_rejects_bad_plans(config):
    with pytest.raises(ValueError, match="shards must be >= 1"):
        plan_shards(config, 0)
    with pytest.raises(ValueError, match="cannot split"):
        plan_shards(config, config.fleet.phone_count + 1)
    sliced = plan_shards(config, 2)[0]
    with pytest.raises(ValueError, match="already a slice"):
        plan_shards(sliced, 2)


def test_merge_rejects_incomplete_or_overlapping_tilings(config):
    task = ShardTask()
    results = [task(c) for c in plan_shards(config, 3)]
    with pytest.raises(ValueError, match="shard ranges"):
        merge_shards(results[:-1], config)
    with pytest.raises(ValueError, match="shard ranges"):
        merge_shards(results + [results[-1]], config)
    with pytest.raises(ValueError, match="no shard results"):
        merge_shards([], config)
    full = merge_shards(results, config)
    assert full.to_dict() == merge_shards(list(reversed(results)), config).to_dict()
    assert merge_ingest_reports(results).quarantined == sum(
        r.ingest.quarantined for r in results
    )


def test_shard_result_wire_round_trip(config):
    result = ShardTask()(plan_shards(config, 25)[0])
    revived = ShardResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert revived.phone_range == result.phone_range
    assert revived.accumulator == result.accumulator
    assert revived.ground_truth == result.ground_truth
    assert revived.ingest.to_dict() == result.ingest.to_dict()


def test_shard_result_rejects_bad_payloads(config):
    result = ShardTask()(plan_shards(config, 25)[0])
    payload = result.to_dict()
    stale = dict(payload, format_version=999)
    with pytest.raises(ValueError, match="format version"):
        ShardResult.from_dict(stale)
    broken = json.loads(json.dumps(payload))
    broken["accumulator"]["format_version"] = 999
    with pytest.raises(ValueError, match="bad shard accumulator"):
        ShardResult.from_dict(broken)
    with pytest.raises((ValueError, KeyError, TypeError)):
        ShardResult.from_dict({"summary": "foreign"})


def test_shard_result_wire_format_hardening(config):
    """Every way a cache entry can rot maps to a ValueError, never to a
    silently misread shard."""
    result = ShardTask()(plan_shards(config, 5)[1])
    pristine = json.loads(json.dumps(result.to_dict()))

    def corrupt(**changes):
        payload = json.loads(json.dumps(pristine))
        payload.update(changes)
        return payload

    assert ShardResult.from_dict(pristine).events_fired == result.events_fired

    with pytest.raises(ValueError, match="not an object"):
        ShardResult.from_dict(["not", "a", "dict"])
    # Wrong or missing format version.
    with pytest.raises(ValueError, match="format version"):
        ShardResult.from_dict(corrupt(format_version=1))
    missing_version = json.loads(json.dumps(pristine))
    del missing_version["format_version"]
    with pytest.raises(ValueError, match="format version"):
        ShardResult.from_dict(missing_version)
    # Truncation: every required key, one at a time.
    for key in ("phone_range", "config", "accumulator", "ground_truth", "ingest"):
        truncated = json.loads(json.dumps(pristine))
        del truncated[key]
        with pytest.raises(ValueError, match=f"missing.*{key}"):
            ShardResult.from_dict(truncated)
    # Malformed or empty phone ranges.
    for bad in ([3], [1, 2, 3], "0:5", [None, 5], [5, 5], [7, 3], [-1, 4]):
        with pytest.raises(ValueError, match="phone_range"):
            ShardResult.from_dict(corrupt(phone_range=bad))
    # Ground truth shorter than the range (a torn write).
    with pytest.raises(ValueError, match="truncated"):
        ShardResult.from_dict(
            corrupt(ground_truth=pristine["ground_truth"][:-1])
        )
    with pytest.raises(ValueError, match="ground-truth"):
        ShardResult.from_dict(
            corrupt(
                ground_truth=[{"boots": 1.0}]
                * len(pristine["ground_truth"])
            )
        )
    # Event counter must be a non-negative integer.
    for bad_events in (-1, "many", 1.5, True):
        with pytest.raises(ValueError, match="events_fired"):
            ShardResult.from_dict(corrupt(events_fired=bad_events))
    with pytest.raises(ValueError, match="telemetry"):
        ShardResult.from_dict(corrupt(telemetry=["x"]))
    with pytest.raises(ValueError, match="config"):
        ShardResult.from_dict(corrupt(config="not an object"))


def test_merge_rejects_duplicated_phone_range(config):
    """The same range twice is an overlap, even with identical data."""
    results = [ShardTask()(c) for c in plan_shards(config, 3)]
    duplicated = [results[0]] + results
    with pytest.raises(ValueError, match="shard ranges"):
        merge_shards(duplicated, config)


# -- executor backends ----------------------------------------------------------


def test_workqueue_streaming_matches_monolithic(config, monolithic):
    """The work-stealing backend with spill-to-disk merge is the exact
    same campaign: streaming merge, memory merge, and the pool backend
    all emit the monolithic summary bit for bit."""
    streamed = run_sharded_campaign(
        config, shards=3, workers=2, executor="workqueue"
    )
    assert streamed.executor == "workqueue"
    assert streamed.merge_mode == "streaming"
    assert canonical(streamed.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )
    in_memory = run_sharded_campaign(
        config, shards=3, workers=2, executor="workqueue", merge="memory"
    )
    assert in_memory.merge_mode == "memory"
    assert canonical(in_memory.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )
    assert streamed.events_fired == in_memory.events_fired > 0


def test_streaming_merge_requires_workqueue(config):
    with pytest.raises(ValueError, match="streaming"):
        run_sharded_campaign(config, shards=2, merge="streaming")
    with pytest.raises(ValueError, match="merge mode"):
        run_sharded_campaign(config, shards=2, merge="telepathy")


def test_skewed_plan_with_stealing_matches_monolithic(config, monolithic):
    """A deliberately long-tailed plan plus an eager splitter produces a
    finer executed tiling — and the identical summary."""
    backend = WorkQueueExecutor(2, min_split_phones=2)
    result = run_sharded_campaign(
        config,
        shards=3,
        executor=backend,
        weights=[20, 1, 1],
    )
    assert result.stats.steals >= 1
    assert result.shard_count > 3
    assert canonical(result.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )


def test_plan_shards_weights_tile_exactly(config):
    configs = plan_shards(config, 4, weights=[8, 1, 1, 2])
    ranges = [c.fleet.phone_range for c in configs]
    assert ranges[0][1] - ranges[0][0] > ranges[1][1] - ranges[1][0]
    expected = 0
    for start, stop in ranges:
        assert start == expected and stop > start
        expected = stop
    assert expected == config.fleet.phone_count
    with pytest.raises(ValueError, match="weights"):
        plan_shards(config, 3, weights=[1, 2])
    with pytest.raises(ValueError, match="positive"):
        plan_shards(config, 2, weights=[1, 0])


# -- crash resume ---------------------------------------------------------------


def test_resume_from_committed_shards(tmp_path, config, monolithic):
    """Kill a run after some shards committed (simulated by deleting
    part of the cache): the restart adopts the committed shards, counts
    them as resumed, recomputes only the gaps, and lands on the same
    bits."""
    cache = shard_cache(str(tmp_path))
    first = run_sharded_campaign(
        config, shards=5, workers=2, executor="workqueue", cache=cache
    )
    assert canonical(first.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )
    files = sorted(
        name for name in os.listdir(tmp_path) if name.endswith(".json")
    )
    assert len(files) == 5
    # Lose two shards — a crash that happened mid-run.
    for name in files[:2]:
        os.remove(tmp_path / name)
    resumed = run_sharded_campaign(
        config, shards=5, workers=2, executor="workqueue", cache=cache
    )
    assert resumed.stats.resumed_shards == 3
    assert canonical(resumed.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )
    # A fully committed cache resumes everything and runs nothing.
    full = run_sharded_campaign(
        config, shards=5, workers=2, executor="workqueue", cache=cache
    )
    assert full.stats.resumed_shards == 5
    assert canonical(full.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )


def test_pool_backend_resumes_workqueue_commits(tmp_path, config, monolithic):
    """Committed shards are backend-agnostic: the pool (or serial)
    backend adopts what a workqueue run left behind."""
    cache = shard_cache(str(tmp_path))
    run_sharded_campaign(
        config, shards=4, workers=2, executor="workqueue", cache=cache
    )
    result = run_sharded_campaign(config, shards=4, cache=shard_cache(str(tmp_path)))
    assert result.stats.resumed_shards == 4
    assert canonical(result.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )


def test_corrupt_committed_shard_is_recomputed(tmp_path, config, monolithic):
    """A torn commit (truncated JSON) is skipped at scan time — its
    range is recomputed, never trusted."""
    cache = shard_cache(str(tmp_path))
    run_sharded_campaign(
        config, shards=4, workers=2, executor="workqueue", cache=cache
    )
    files = sorted(
        name for name in os.listdir(tmp_path) if name.endswith(".json")
    )
    victim = tmp_path / files[1]
    victim.write_text(victim.read_text()[: 200], encoding="utf-8")
    resumed = run_sharded_campaign(
        config, shards=4, workers=2, executor="workqueue",
        cache=shard_cache(str(tmp_path)),
    )
    assert resumed.stats.resumed_shards == 3
    assert canonical(resumed.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )


_KILL9_CHILD = textwrap.dedent(
    """
    import sys

    from repro.core.clock import MONTH
    from repro.experiments.config import CampaignConfig
    from repro.experiments.shard import run_sharded_campaign, shard_cache
    from repro.phone.fleet import FleetConfig

    fleet = FleetConfig(
        phone_count=25,
        duration=MONTH,
        enroll_fraction_min=0.0,
        enroll_fraction_max=0.15,
    )
    config = CampaignConfig(fleet=fleet, seed=4242)
    run_sharded_campaign(
        config,
        shards=5,
        workers=2,
        executor="workqueue",
        cache=shard_cache(sys.argv[1]),
    )
    """
)


def test_kill9_mid_run_then_resume_is_bit_identical(
    tmp_path, config, monolithic
):
    """The headline durability claim: SIGKILL the whole process tree
    mid-run, restart, and the resumed campaign is bit-identical with at
    least one shard adopted from the committed cache."""
    cache_dir = str(tmp_path / "cache")
    os.makedirs(cache_dir)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    child = subprocess.Popen(
        [sys.executable, "-c", _KILL9_CHILD, cache_dir],
        env=env,
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120.0
        committed = 0
        while time.monotonic() < deadline:
            committed = sum(
                1 for n in os.listdir(cache_dir) if n.endswith(".json")
            )
            if committed >= 2 or child.poll() is not None:
                break
            time.sleep(0.005)
        if child.poll() is None:
            # kill -9 the whole session: coordinator and workers alike.
            os.killpg(os.getpgid(child.pid), signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
    survivors = sum(1 for n in os.listdir(cache_dir) if n.endswith(".json"))
    assert survivors >= 1, "no shard committed before the kill"
    resumed = run_sharded_campaign(
        config, shards=5, workers=2, executor="workqueue",
        cache=shard_cache(cache_dir),
    )
    assert resumed.stats.resumed_shards >= 1
    assert canonical(resumed.summary.to_dict()) == canonical(
        monolithic.to_dict()
    )
