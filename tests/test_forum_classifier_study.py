"""Tests for the forum classifier and the end-to-end §4 study."""

import pytest

from repro.forum import taxonomy as T
from repro.forum.classifier import (
    ReportClassifier,
    score_against_ground_truth,
)
from repro.forum.corpus import CorpusConfig, ForumPost, generate_corpus
from repro.forum.study import analyze_reports, run_forum_study


def make_post(text, post_id=0, model="Nokia 6600"):
    return ForumPost(
        post_id=post_id,
        date="2005-06",
        forum="howardforums.com",
        vendor="Nokia",
        model=model,
        device_class=T.SMART_PHONE,
        text=text,
    )


class TestClassifierRules:
    def classify(self, text):
        return ReportClassifier().classify_post(make_post(text))

    def test_freeze_with_battery_removal(self):
        report = self.classify(
            "the phone freezes whenever I try to write a text message, and "
            "stays frozen until I take the battery out"
        )
        assert report is not None
        assert report.failure_type == T.FREEZE
        assert report.recovery == T.BATTERY_REMOVAL
        assert report.severity == T.SEVERITY_MEDIUM
        assert report.activity == T.ACT_TEXT

    def test_unstable_with_memory_leak_mention(self):
        report = self.classify(
            "the phone exhibits random wallpaper disappearing and power "
            "cycling, due to UI memory leaks"
        )
        assert report.failure_type == T.UNSTABLE_BEHAVIOR

    def test_self_shutdown(self):
        report = self.classify("it just turns itself off at random moments")
        assert report.failure_type == T.SELF_SHUTDOWN

    def test_output_failure_with_reboot(self):
        report = self.classify(
            "the charge indicator is wrong, a reboot fixes it until next time"
        )
        assert report.failure_type == T.OUTPUT_FAILURE
        assert report.recovery == T.REBOOT

    def test_input_failure(self):
        report = self.classify("the soft keys do not work at all")
        assert report.failure_type == T.INPUT_FAILURE

    def test_service_recovery_high_severity(self):
        report = self.classify(
            "the screen locks up, the service center had to do a master reset"
        )
        assert report.recovery == T.SERVICE
        assert report.severity == T.SEVERITY_HIGH

    def test_wait_recovery_low_severity(self):
        report = self.classify(
            "it hangs, but after waiting a while it comes back by itself"
        )
        assert report.recovery == T.WAIT
        assert report.severity == T.SEVERITY_LOW

    def test_unreported_recovery(self):
        report = self.classify("the screen locks up every single day")
        assert report.recovery == T.UNREPORTED
        assert report.severity is None

    def test_chatter_filtered_out(self):
        classifier = ReportClassifier()
        assert classifier.classify_post(
            make_post("anyone know where to download good ringtones?")
        ) is None
        assert classifier.filtered_out == 1

    def test_activity_voice(self):
        report = self.classify("it hangs, always in the middle of a phone call")
        assert report.activity == T.ACT_VOICE

    def test_activity_bluetooth(self):
        report = self.classify("it hangs when using bluetooth to transfer files")
        assert report.activity == T.ACT_BLUETOOTH

    def test_activity_none(self):
        report = self.classify("it hangs now and then")
        assert report.activity == T.ACT_NONE

    def test_device_class_from_model(self):
        report = ReportClassifier().classify_post(
            make_post("the screen locks up", model="Samsung D500")
        )
        assert report.device_class == T.CONVENTIONAL

    def test_classified_counter(self):
        classifier = ReportClassifier()
        classifier.classify_post(make_post("the screen locks up"))
        assert classifier.classified == 1


class TestScoring:
    def test_perfect_on_clear_corpus(self):
        posts = generate_corpus(
            CorpusConfig(failure_reports=150, noise_level=0.0, chatter_ratio=0.0),
            seed=11,
        )
        scores = score_against_ground_truth(posts)
        assert scores["recall"] == 1.0
        assert scores["type_accuracy"] == 1.0

    def test_noise_reduces_recall(self):
        clear = score_against_ground_truth(
            generate_corpus(CorpusConfig(noise_level=0.0), seed=12)
        )
        noisy = score_against_ground_truth(
            generate_corpus(CorpusConfig(noise_level=1.0), seed=12)
        )
        assert noisy["recall"] < clear["recall"]

    def test_tricky_chatter_costs_precision(self):
        posts = generate_corpus(
            CorpusConfig(failure_reports=300, chatter_ratio=5.0), seed=13
        )
        scores = score_against_ground_truth(posts)
        assert scores["precision"] < 1.0
        assert scores["precision"] > 0.8


class TestStudy:
    def test_full_study_shape(self):
        result = run_forum_study(seed=2003)
        assert result.report_count > 400
        assert result.dominant_failure_type() == T.OUTPUT_FAILURE
        assert result.type_totals[T.OUTPUT_FAILURE] == pytest.approx(36.3, abs=4.0)
        assert result.type_totals[T.FREEZE] == pytest.approx(25.3, abs=4.0)
        assert result.smart_phone_share == pytest.approx(0.223, abs=0.05)

    def test_table1_cells_sum_to_100(self):
        result = run_forum_study(seed=2003)
        assert sum(result.table1.values()) == pytest.approx(100.0, abs=0.1)

    def test_activity_marginals(self):
        result = run_forum_study(seed=2003)
        assert result.activity_totals[T.ACT_VOICE] == pytest.approx(13.0, abs=4.0)

    def test_severity_totals_sum_to_100(self):
        result = run_forum_study(seed=2003)
        assert sum(result.severity_totals.values()) == pytest.approx(100.0, abs=0.1)

    def test_renderings_contain_key_facts(self):
        result = run_forum_study(seed=2003)
        table = result.render_table1()
        assert "freeze" in table
        assert "battery_removal" in table
        summary = result.render_summary()
        assert "smart phone share" in summary
        assert "classifier vs ground truth" in summary

    def test_analyze_empty_reports(self):
        result = analyze_reports([])
        assert result.report_count == 0
        assert result.smart_phone_share == 0.0

    def test_study_accepts_prebuilt_posts(self):
        posts = generate_corpus(CorpusConfig(failure_reports=50), seed=20)
        result = run_forum_study(posts=posts)
        assert 30 <= result.report_count <= 60


class TestDeviceClassBreakdown:
    def test_split_covers_both_classes(self):
        result = run_forum_study(seed=2003)
        split = result.type_totals_by_device_class()
        assert set(split) == {T.SMART_PHONE, T.CONVENTIONAL}
        for distribution in split.values():
            assert sum(distribution.values()) == pytest.approx(100.0)

    def test_output_failures_dominate_both_classes(self):
        result = run_forum_study(seed=2003)
        split = result.type_totals_by_device_class()
        for distribution in split.values():
            top = max(distribution.items(), key=lambda kv: kv[1])[0]
            assert top == T.OUTPUT_FAILURE

    def test_empty_reports(self):
        result = analyze_reports([])
        assert result.type_totals_by_device_class() == {}
