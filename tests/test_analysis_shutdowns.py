"""Tests for shutdown/freeze classification and Figure 2."""

import pytest

from repro.analysis.shutdowns import (
    SELF_SHUTDOWN_THRESHOLD,
    compute_shutdown_study,
)
from repro.core.records import BootRecord
from tests.helpers import dataset_from_records


def boot(time, kind, beat_time):
    return BootRecord(time, kind, beat_time)


def study_of(records, end_time=100000.0):
    dataset = dataset_from_records({"phone-00": records}, end_time=end_time)
    return compute_shutdown_study(dataset)


class TestClassification:
    def test_first_boot_counted_separately(self):
        study = study_of([boot(0.0, "NONE", 0.0)])
        assert study.first_boot_count == 1
        assert not study.freezes
        assert not study.shutdowns

    def test_alive_boot_is_freeze(self):
        study = study_of([boot(0.0, "NONE", 0.0), boot(1000.0, "ALIVE", 800.0)])
        assert len(study.freezes) == 1
        freeze = study.freezes[0]
        assert freeze.detected_at == 1000.0
        assert freeze.last_alive == 800.0
        assert freeze.est_time == 800.0

    def test_reboot_boot_is_shutdown_with_duration(self):
        study = study_of([boot(0.0, "NONE", 0.0), boot(1000.0, "REBOOT", 920.0)])
        assert len(study.shutdowns) == 1
        event = study.shutdowns[0]
        assert event.duration == pytest.approx(80.0)
        assert event.is_self_shutdown()

    def test_long_duration_is_user_shutdown(self):
        study = study_of([boot(0.0, "NONE", 0.0), boot(31000.0, "REBOOT", 1000.0)])
        assert not study.shutdowns[0].is_self_shutdown()
        assert study.user_shutdowns() == study.shutdowns

    def test_threshold_boundary_exclusive(self):
        study = study_of(
            [boot(0.0, "NONE", 0.0), boot(1360.0, "REBOOT", 1000.0)]
        )
        assert not study.shutdowns[0].is_self_shutdown(360.0)

    def test_lowbt_and_maoff_counted_not_classified(self):
        study = study_of(
            [
                boot(0.0, "NONE", 0.0),
                boot(1000.0, "LOWBT", 900.0),
                boot(2000.0, "MAOFF", 1900.0),
            ]
        )
        assert study.lowbt_count == 1
        assert study.maoff_count == 1
        assert not study.shutdowns
        assert not study.freezes

    def test_events_sorted_across_phones(self):
        dataset = dataset_from_records(
            {
                "a": [boot(0.0, "NONE", 0.0), boot(500.0, "ALIVE", 400.0)],
                "b": [boot(0.0, "NONE", 0.0), boot(300.0, "ALIVE", 200.0)],
            },
            end_time=1000,
        )
        study = compute_shutdown_study(dataset)
        assert [f.detected_at for f in study.freezes] == [300.0, 500.0]

    def test_freezes_by_phone(self):
        dataset = dataset_from_records(
            {
                "a": [boot(0.0, "NONE", 0.0), boot(500.0, "ALIVE", 400.0)],
                "b": [boot(0.0, "NONE", 0.0)],
            },
            end_time=1000,
        )
        study = compute_shutdown_study(dataset)
        assert study.freezes_by_phone() == {"a": 1}


class TestFigure2:
    def test_histogram_counts(self):
        records = [boot(0.0, "NONE", 0.0)]
        # three short shutdowns, one long
        for start, off in ((1000, 70), (2000, 90), (3000, 85), (10000, 30000)):
            records.append(boot(start + off, "REBOOT", start))
        study = study_of(records)
        hist = study.duration_histogram([0, 100, 1000, 100000])
        assert [count for _lo, _hi, count in hist] == [3, 0, 1]

    def test_histogram_invalid_edges(self):
        study = study_of([boot(0.0, "NONE", 0.0)])
        with pytest.raises(ValueError):
            study.duration_histogram([10, 10])
        with pytest.raises(ValueError):
            study.duration_histogram([10])

    def test_median_self_shutdown_duration(self):
        records = [boot(0.0, "NONE", 0.0)]
        for i, off in enumerate((60, 80, 100)):
            start = 1000 * (i + 1)
            records.append(boot(start + off, "REBOOT", start))
        study = study_of(records)
        assert study.median_self_shutdown_duration() == 80.0

    def test_median_even_count(self):
        records = [boot(0.0, "NONE", 0.0)]
        for i, off in enumerate((60, 100)):
            start = 1000 * (i + 1)
            records.append(boot(start + off, "REBOOT", start))
        assert study_of(records).median_self_shutdown_duration() == 80.0

    def test_median_empty(self):
        assert study_of([boot(0.0, "NONE", 0.0)]).median_self_shutdown_duration() == 0.0

    def test_night_mode(self):
        records = [boot(0.0, "NONE", 0.0)]
        for i, off in enumerate((29000, 30000, 31000)):
            start = 100000 * (i + 1)
            records.append(boot(start + off, "REBOOT", start))
        assert study_of(records, end_time=1e6).night_mode_duration() == 30000.0

    def test_self_shutdown_fraction(self):
        records = [boot(0.0, "NONE", 0.0)]
        for i, off in enumerate((80, 80, 80, 30000)):
            start = 100000 * (i + 1)
            records.append(boot(start + off, "REBOOT", start))
        study = study_of(records, end_time=1e6)
        assert study.self_shutdown_fraction() == pytest.approx(0.75)

    def test_fraction_empty(self):
        assert study_of([boot(0.0, "NONE", 0.0)]).self_shutdown_fraction() == 0.0


class TestOnRealCampaign:
    def test_bimodal_reboot_durations(self, quick_campaign):
        study = quick_campaign.report.study
        selfs = study.self_shutdowns()
        users = study.user_shutdowns()
        assert selfs, "campaign produced self-shutdowns"
        assert users, "campaign produced user shutdowns"
        # The two lobes the paper shows: short mode well under the
        # threshold, night mode in the hours range.
        assert study.median_self_shutdown_duration() < 200.0
        assert study.night_mode_duration() > 3600.0

    def test_freeze_counts_match_ground_truth(self, quick_campaign):
        study = quick_campaign.report.study
        truth = quick_campaign.ground_truth
        # Every freeze leaves an ALIVE boot unless the campaign ended
        # while the phone was still frozen/off (at most one per phone),
        # or the freeze happened during a logger-off (MAOFF) period.
        assert abs(len(study.freezes) - truth["freezes"]) <= 1 + int(
            truth.get("maoff", 0)
        ) + quick_campaign.dataset.phone_count

    def test_threshold_is_papers(self):
        assert SELF_SHUTDOWN_THRESHOLD == 360.0


class TestHistogramEdges:
    """Half-open bin convention: [lo, hi) for every bin."""

    def test_duration_on_interior_edge_goes_to_upper_bin(self):
        records = [boot(0.0, "NONE", 0.0), boot(1100.0, "REBOOT", 1000.0)]
        hist = study_of(records).duration_histogram([0, 100, 1000])
        assert [count for _lo, _hi, count in hist] == [0, 1]

    def test_duration_on_last_edge_is_excluded(self):
        records = [boot(0.0, "NONE", 0.0), boot(2000.0, "REBOOT", 1000.0)]
        hist = study_of(records).duration_histogram([0, 100, 1000])
        assert [count for _lo, _hi, count in hist] == [0, 0]

    def test_duration_below_first_edge_is_excluded(self):
        records = [boot(0.0, "NONE", 0.0), boot(1050.0, "REBOOT", 1000.0)]
        hist = study_of(records).duration_histogram([100, 1000])
        assert [count for _lo, _hi, count in hist] == [0]

    def test_unsorted_edges_rejected(self):
        study = study_of([boot(0.0, "NONE", 0.0)])
        with pytest.raises(ValueError):
            study.duration_histogram([100, 50, 200])
