"""Determinism suite for the parallel campaign runner.

The acceptance bar: parallel execution must be bit-for-bit identical
to serial execution (compared through ``CampaignSummary.to_dict()``),
cached re-runs must not execute anything, and a poisoned worker must
surface its seed in the raised error.
"""

import json
import os
import time

import pytest

from repro.core.clock import MONTH
from repro.experiments.cache import CampaignCache, campaign_cache_key
from repro.experiments.config import CampaignConfig
from repro.experiments.runner import (
    CampaignExecutionError,
    run_campaigns,
    run_campaigns_resilient,
    summarize_campaign,
)
from repro.experiments.summary import (
    SECTION_KEYS,
    SUMMARY_FORMAT_VERSION,
    CampaignSummary,
)
from repro.phone.fleet import FleetConfig

SEEDS = [7, 8, 9]


def tiny_config(seed: int) -> CampaignConfig:
    """A 3-phone, 1-month campaign: fast, but every mechanism runs."""
    return CampaignConfig(
        fleet=FleetConfig(phone_count=3, duration=1 * MONTH), seed=seed
    )


def poison_task(config: CampaignConfig) -> CampaignSummary:
    """Worker task that fails on seed 8 (module-level: picklable)."""
    if config.seed == 8:
        raise ValueError("poisoned campaign")
    return summarize_campaign(config)


def explode_task(config: CampaignConfig) -> CampaignSummary:
    """Worker task that always fails — proves cached runs never execute."""
    raise AssertionError(f"should not have executed seed {config.seed}")


class FlakyTask:
    """Fails seed 8's first attempt, then heals (picklable instance)."""

    accepts_attempt = True

    def __call__(self, config: CampaignConfig, attempt: int = 0):
        if config.seed == 8 and attempt == 0:
            raise ValueError("transient worker fault")
        return summarize_campaign(config)


class HangTask:
    """Stalls seed 8's first attempt past any sub-second watchdog."""

    accepts_attempt = True

    def __call__(self, config: CampaignConfig, attempt: int = 0):
        if config.seed == 8 and attempt == 0:
            time.sleep(3.0)
        return summarize_campaign(config)


@pytest.fixture(scope="module")
def serial_summaries():
    return run_campaigns([tiny_config(seed) for seed in SEEDS], workers=1)


class TestDeterminism:
    def test_parallel_identical_to_serial(self, serial_summaries):
        parallel = run_campaigns(
            [tiny_config(seed) for seed in SEEDS], workers=4
        )
        assert [s.to_dict() for s in parallel] == [
            s.to_dict() for s in serial_summaries
        ]

    def test_results_in_config_order(self, serial_summaries):
        assert [s.seed for s in serial_summaries] == SEEDS
        reversed_order = run_campaigns(
            [tiny_config(seed) for seed in reversed(SEEDS)], workers=4
        )
        assert [s.seed for s in reversed_order] == list(reversed(SEEDS))

    def test_rerun_is_identical(self, serial_summaries):
        again = run_campaigns([tiny_config(seed) for seed in SEEDS], workers=1)
        assert [s.to_dict() for s in again] == [
            s.to_dict() for s in serial_summaries
        ]


class TestSummary:
    def test_sections_present(self, serial_summaries):
        for summary in serial_summaries:
            assert set(summary.sections) == set(SECTION_KEYS)
            assert summary.format_version == SUMMARY_FORMAT_VERSION

    def test_matches_live_report(self):
        config = tiny_config(7)
        from repro.experiments.campaign import run_campaign

        result = run_campaign(config)
        summary = CampaignSummary.from_result(result)
        report = result.report
        assert summary.seed == 7
        assert summary.ground_truth == result.ground_truth
        assert (
            summary.availability["freeze_count"]
            == report.availability.freeze_count
        )
        assert summary.panics["total"] == report.panic_table.total
        assert summary.hl["related_percent"] == report.hl.related_percent
        assert (
            summary.runapps["modal_app_count"]
            == report.runapps.modal_app_count
        )

    def test_json_round_trip_exact(self, serial_summaries):
        for summary in serial_summaries:
            data = summary.to_dict()
            reloaded = CampaignSummary.from_dict(json.loads(json.dumps(data)))
            assert reloaded.to_dict() == data

    def test_from_dict_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing keys"):
            CampaignSummary.from_dict({"config": {}})

    def test_summary_is_json_native(self, serial_summaries):
        # No tuples, dataclasses, or non-string dict keys anywhere.
        def check(value):
            if isinstance(value, dict):
                for key, val in value.items():
                    assert isinstance(key, str), key
                    check(val)
            elif isinstance(value, list):
                for item in value:
                    check(item)
            else:
                assert value is None or isinstance(
                    value, (str, int, float, bool)
                ), repr(value)

        check(serial_summaries[0].to_dict())


class TestFailurePropagation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_poisoned_worker_surfaces_seed(self, workers):
        configs = [tiny_config(seed) for seed in SEEDS]
        with pytest.raises(CampaignExecutionError, match="seed 8") as info:
            run_campaigns(configs, workers=workers, task=poison_task)
        assert info.value.seed == 8
        assert info.value.index == 1

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            run_campaigns([tiny_config(7)], workers=0)

    def test_invalid_retry_count_rejected(self):
        with pytest.raises(ValueError):
            run_campaigns([tiny_config(7)], retries=-1)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_error_carries_worker_traceback(self, workers):
        configs = [tiny_config(seed) for seed in SEEDS]
        with pytest.raises(CampaignExecutionError) as info:
            run_campaigns(configs, workers=workers, task=poison_task)
        assert "poisoned campaign" in info.value.traceback
        assert "ValueError" in info.value.traceback
        assert info.value.attempts == 1
        assert "seed 8" in str(info.value)

    def test_error_reports_attempt_count_after_retries(self):
        configs = [tiny_config(seed) for seed in SEEDS]
        with pytest.raises(CampaignExecutionError, match="3 attempts") as info:
            run_campaigns(configs, workers=1, task=poison_task, retries=2)
        assert info.value.attempts == 3


class TestSelfHealing:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_retry_heals_transient_fault(self, workers, serial_summaries):
        manifest = run_campaigns_resilient(
            [tiny_config(seed) for seed in SEEDS],
            workers=workers,
            task=FlakyTask(),
            retries=1,
        )
        assert manifest.complete
        assert manifest.recovered == 1
        # The healed sweep is bit-identical to one that never failed.
        assert [s.to_dict() for s in manifest.summaries] == [
            s.to_dict() for s in serial_summaries
        ]

    def test_run_campaigns_with_retries_succeeds(self, serial_summaries):
        summaries = run_campaigns(
            [tiny_config(seed) for seed in SEEDS],
            workers=1,
            task=FlakyTask(),
            retries=1,
        )
        assert [s.to_dict() for s in summaries] == [
            s.to_dict() for s in serial_summaries
        ]

    def test_resilient_manifest_reports_partial_results(self):
        manifest = run_campaigns_resilient(
            [tiny_config(seed) for seed in SEEDS],
            workers=1,
            task=poison_task,
            retries=1,
        )
        assert not manifest.complete
        assert manifest.failed_indices == [1]
        assert [
            None if s is None else s.seed for s in manifest.summaries
        ] == [7, None, 9]
        assert [s.seed for s in manifest.completed_summaries()] == [7, 9]
        failure = manifest.failures[0]
        assert failure.seed == 8
        assert failure.error_type == "ValueError"
        assert failure.attempts == 2
        assert "poisoned campaign" in failure.traceback
        data = manifest.to_dict()
        assert data["total"] == 3 and data["completed"] == 2
        assert data["failures"][0]["seed"] == 8
        json.dumps(data)  # manifest must be JSON-native

    def test_watchdog_reclaims_hung_worker_and_retry_heals(
        self, serial_summaries
    ):
        manifest = run_campaigns_resilient(
            [tiny_config(seed) for seed in SEEDS],
            workers=2,
            task=HangTask(),
            retries=1,
            timeout=1.0,
        )
        assert manifest.complete
        assert manifest.recovered == 1
        assert [s.to_dict() for s in manifest.summaries] == [
            s.to_dict() for s in serial_summaries
        ]

    def test_watchdog_without_retries_reports_hung_worker(self):
        manifest = run_campaigns_resilient(
            [tiny_config(seed) for seed in SEEDS],
            workers=2,
            task=HangTask(),
            retries=0,
            timeout=1.0,
        )
        assert manifest.failed_indices == [1]
        assert manifest.failures[0].error_type == "WorkerTimeout"
        assert "hung worker" in manifest.failures[0].message


class TestCacheIntegration:
    def test_cached_rerun_hits_and_skips_execution(
        self, tmp_path, serial_summaries
    ):
        cache = CampaignCache(str(tmp_path))
        configs = [tiny_config(seed) for seed in SEEDS]
        first = run_campaigns(configs, workers=1, cache=cache)
        assert cache.misses == len(SEEDS) and cache.hits == 0
        assert len(cache) == len(SEEDS)
        # Second run: everything cached — the exploding task proves no
        # campaign executes, and the results are still identical.
        second = run_campaigns(configs, workers=1, cache=cache, task=explode_task)
        assert cache.hits == len(SEEDS)
        assert [s.to_dict() for s in second] == [s.to_dict() for s in first]
        assert [s.to_dict() for s in first] == [
            s.to_dict() for s in serial_summaries
        ]

    def test_partial_cache_runs_only_misses(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        run_campaigns([tiny_config(7)], workers=1, cache=cache)
        summaries = run_campaigns(
            [tiny_config(seed) for seed in SEEDS], workers=1, cache=cache
        )
        assert [s.seed for s in summaries] == SEEDS
        assert cache.hits == 1
        assert len(cache) == len(SEEDS)


class TestCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        config = tiny_config(7)
        summary = summarize_campaign(config)
        cache.put(config, summary)
        loaded = cache.get(config)
        assert loaded is not None
        assert loaded.to_dict() == summary.to_dict()

    def test_key_depends_on_seed_and_config(self):
        base = campaign_cache_key(tiny_config(7))
        assert campaign_cache_key(tiny_config(8)) != base
        other = CampaignConfig(
            fleet=FleetConfig(phone_count=4, duration=1 * MONTH), seed=7
        )
        assert campaign_cache_key(other) != base
        assert campaign_cache_key(tiny_config(7)) == base

    def test_key_covers_analysis_knobs(self):
        windowed = CampaignConfig(
            fleet=FleetConfig(phone_count=3, duration=1 * MONTH),
            seed=7,
            coalescence_window=600.0,
        )
        assert campaign_cache_key(windowed) != campaign_cache_key(tiny_config(7))

    def test_empty_cache_misses(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        assert cache.get(tiny_config(7)) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        config = tiny_config(7)
        cache.put(config, summarize_campaign(config))
        with open(cache.path_for(config), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.get(config) is None

    def test_corrupt_entry_is_evicted_from_disk(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        config = tiny_config(7)
        summary = summarize_campaign(config)
        cache.put(config, summary)
        path = cache.path_for(config)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.get(config) is None
        assert cache.evictions == 1
        assert not os.path.exists(path)  # cannot shadow the recompute
        cache.put(config, summary)
        reloaded = cache.get(config)
        assert reloaded is not None
        assert reloaded.to_dict() == summary.to_dict()

    def test_truncated_entry_is_evicted(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        config = tiny_config(7)
        cache.put(config, summarize_campaign(config))
        path = cache.path_for(config)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text[: len(text) // 2])  # torn write
        assert cache.get(config) is None
        assert cache.evictions == 1
        assert not os.path.exists(path)

    def test_missing_file_is_plain_miss_not_eviction(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        assert cache.get(tiny_config(7)) is None
        assert cache.evictions == 0

    def test_runner_recomputes_through_evicted_entry(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        configs = [tiny_config(seed) for seed in SEEDS]
        first = run_campaigns(configs, workers=1, cache=cache)
        with open(cache.path_for(configs[1]), "w", encoding="utf-8") as handle:
            handle.write('{"key": "garbage"')
        second = run_campaigns(configs, workers=1, cache=cache)
        assert cache.evictions == 1
        assert cache.hits == 2  # the two untouched entries
        assert [s.to_dict() for s in second] == [s.to_dict() for s in first]
        # The recomputed entry landed back in a clean slot.
        assert os.path.exists(cache.path_for(configs[1]))

    def test_format_version_mismatch_is_miss(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        config = tiny_config(7)
        cache.put(config, summarize_campaign(config))
        path = cache.path_for(config)
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["format_version"] = SUMMARY_FORMAT_VERSION + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.get(config) is None

    def test_clear(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        config = tiny_config(7)
        cache.put(config, summarize_campaign(config))
        assert cache.clear() == 1
        assert len(cache) == 0
