"""Engine edge-case and accounting tests.

Covers the documented escape semantics of ``run_until`` (a raising
callback must leave the simulator resumable, not half-advanced), the
``ScheduledEvent`` lifecycle reporting, and a property test that
interleaved ``schedule_*``/``cancel``/``_compact``/``run_until``
sequences keep ``pending_count()``, ``events_cancelled`` and the
internal dead-entry counter exactly consistent — including cancels
fired from inside callbacks and compaction mid-``run_until``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import DEFAULT_TICK_WIDTH, ScheduledEvent, Simulator
from repro.core.errors import SimulationError

TICK_WIDTHS = [0.0, 7.5, DEFAULT_TICK_WIDTH]


# ---------------------------------------------------------------------------
# run_until escape semantics: fires, raises, resumes.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tick_width", TICK_WIDTHS)
def test_run_until_fires_raises_resumes(tick_width):
    sim = Simulator(tick_width=tick_width)
    order = []

    def boom():
        order.append("boom")
        # Work scheduled before the raise must survive the escape.
        sim.schedule_at(sim.now + 1.0, lambda: order.append("from-boom"))
        raise RuntimeError("injected")

    sim.schedule_at(5.0, lambda: order.append("before"))
    sim.schedule_at(15.0, boom)
    sim.schedule_at(15.0, lambda: order.append("same-instant"))
    sim.schedule_at(25.0, lambda: order.append("after"))

    with pytest.raises(RuntimeError, match="injected"):
        sim.run_until(100.0)

    # Documented escape state: clock at the failing event's timestamp
    # (NOT advanced to t), the failing event counted as fired, every
    # survivor still queued, counters exact.
    assert order == ["before", "boom"]
    assert sim.now == 15.0
    assert sim.events_fired == 2
    assert sim.pending_count() == 3  # same-instant, from-boom, after

    # A fresh run_until resumes exactly where the drain stopped.
    sim.run_until(100.0)
    assert order == ["before", "boom", "same-instant", "from-boom", "after"]
    assert sim.now == 100.0
    assert sim.pending_count() == 0
    assert sim.events_fired == 5
    # The re-entrancy latch was released by the escape path too.
    sim.schedule_at(200.0, lambda: order.append("tail"))
    sim.run_until(200.0)
    assert order[-1] == "tail"


def test_run_until_without_events_still_advances_clock():
    sim = Simulator()
    sim.run_until(42.0)
    assert sim.now == 42.0
    with pytest.raises(SimulationError):
        sim.run_until(41.0)  # clock cannot move backwards


# ---------------------------------------------------------------------------
# ScheduledEvent lifecycle reporting.
# ---------------------------------------------------------------------------


def test_repr_reports_pending_fired_and_cancelled():
    sim = Simulator()
    handle = sim.schedule_at(10.0, lambda: None)
    assert repr(handle).endswith("pending)")
    sim.run_until(10.0)
    # The pre-fix __repr__ reported fired events as pending.
    assert repr(handle).endswith("fired)")

    cancelled = sim.schedule_at(20.0, lambda: None)
    cancelled.cancel()
    assert repr(cancelled).endswith("cancelled)")


def test_cancel_after_fire_is_a_noop():
    sim = Simulator()
    fired = []
    handle = sim.schedule_at(1.0, lambda: fired.append(1))
    sim.run_until(1.0)
    handle.cancel()
    assert not handle.cancelled  # it fired; cancel must not relabel it
    assert "fired" in repr(handle)
    assert sim.events_cancelled == 0
    assert sim.pending_count() == 0


def test_scheduled_event_defines_no_ordering():
    # Queue entries are (time, priority, seq, event) tuples and the
    # unique seq guarantees comparisons never reach the event object;
    # a stray __lt__ would silently mask key bugs, so its absence is
    # part of the contract.
    assert "__lt__" not in ScheduledEvent.__dict__
    a = ScheduledEvent(1.0, 0, 0, lambda: None, ())
    b = ScheduledEvent(2.0, 0, 1, lambda: None, ())
    with pytest.raises(TypeError):
        a < b


# ---------------------------------------------------------------------------
# Accounting property: pending_count / events_cancelled / dead entries.
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["sched_at", "sched_after", "cancel", "compact", "run"]
        ),
        st.integers(min_value=0, max_value=10**6),
    ),
    min_size=1,
    max_size=60,
)


@given(ops=_OPS, tick_width=st.sampled_from(TICK_WIDTHS))
@settings(max_examples=150, deadline=None)
def test_interleaved_ops_keep_accounting_exact(ops, tick_width):
    sim = Simulator(tick_width=tick_width)
    handles = []
    scheduled = 0
    fired_ids = []
    cancelled_ids = set()

    def note_cancel(handle):
        # cancel() is a no-op on fired or already-cancelled events;
        # mirror that in the model so events_cancelled stays exact.
        if handle._sim is not None and not handle.cancelled:
            cancelled_ids.add(id(handle))
        handle.cancel()

    def check():
        live = scheduled - len(fired_ids) - len(cancelled_ids)
        assert sim.pending_count() == live
        assert sim.events_scheduled == scheduled
        assert sim.events_fired == len(fired_ids)
        assert sim.events_cancelled == len(cancelled_ids)
        # The dead-entry counter is exactly the physically-resident
        # cancelled entries, and never negative.
        assert sim._cancelled_count == sim._resident_count() - live
        assert sim._cancelled_count >= 0

    def check_resident():
        # The subset of the books that is exact from *inside* a firing
        # callback: events_fired is folded in at run_until exit, but
        # residency and cancellation accounting are eager.
        live = scheduled - len(fired_ids) - len(cancelled_ids)
        assert sim.pending_count() == live
        assert sim.events_scheduled == scheduled
        assert sim.events_cancelled == len(cancelled_ids)
        assert sim._cancelled_count == sim._resident_count() - live
        assert sim._cancelled_count >= 0

    def fire(payload):
        fired_ids.append(payload)
        check_resident()
        action = payload % 4
        if action == 1 and handles:
            note_cancel(handles[payload % len(handles)])
        elif action == 2:
            nonlocal scheduled
            scheduled += 1
            handles.append(
                sim.schedule_after((payload % 300) / 10.0, fire, payload + 7)
            )
        elif action == 3:
            sim._compact()  # compaction mid-run_until
        check_resident()

    for op, a in ops:
        if op == "sched_at":
            scheduled += 1
            handles.append(
                sim.schedule_at(
                    sim.now + (a % 5000) / 10.0,
                    fire,
                    a,
                    priority=(a % 7) - 3,
                )
            )
        elif op == "sched_after":
            scheduled += 1
            handles.append(sim.schedule_after((a % 5000) / 10.0, fire, a))
        elif op == "cancel":
            if handles:
                note_cancel(handles[a % len(handles)])
        elif op == "compact":
            sim._compact()
        elif op == "run":
            sim.run_until(sim.now + (a % 3000) / 10.0)
        check()

    # Drain everything; the books must balance at quiescence too.
    sim.run()
    check()
    assert sim.pending_count() == 0
