"""Tests for the kernel executive: panic translation and recovery."""

import pytest

from repro.core.events import EventBus
from repro.symbian.errors import PanicRaised, PanicRequest
from repro.symbian.kernel import (
    TOPIC_PANIC,
    TOPIC_REBOOT_REQUEST,
    KernelExecutive,
)
from repro.symbian.panics import KERN_EXEC_0, KERN_EXEC_3, USER_11


class TestProcesses:
    def test_create_process(self):
        kernel = KernelExecutive()
        process = kernel.create_process("Camera")
        assert process.alive
        assert kernel.find_process("Camera") is process

    def test_duplicate_name_rejected(self):
        kernel = KernelExecutive()
        kernel.create_process("Camera")
        with pytest.raises(ValueError):
            kernel.create_process("Camera")

    def test_process_has_runtime_structures(self):
        process = KernelExecutive().create_process("App")
        assert process.heap.cell_count == 0
        assert process.object_index.count == 0
        assert process.main_thread.alive

    def test_spawn_thread(self):
        process = KernelExecutive().create_process("App")
        thread = process.spawn_thread("worker")
        assert thread.name == "App::worker"
        assert len(process.threads) == 2

    def test_terminate_process(self):
        kernel = KernelExecutive()
        process = kernel.create_process("App")
        kernel.terminate_process(process)
        assert not process.alive
        assert kernel.find_process("App") is None
        assert all(not t.alive for t in process.threads)

    def test_processes_listing(self):
        kernel = KernelExecutive()
        kernel.create_process("A")
        kernel.create_process("B")
        assert {p.name for p in kernel.processes()} == {"A", "B"}


class TestFaultTranslation:
    def test_access_violation_becomes_kern_exec_3(self):
        kernel = KernelExecutive()
        process = kernel.create_process("App")
        with pytest.raises(PanicRaised) as exc:
            kernel.execute(process, lambda: process.space.read(0))
        assert exc.value.panic_id == KERN_EXEC_3
        assert exc.value.process_name == "App"

    def test_bad_handle_becomes_kern_exec_0(self):
        kernel = KernelExecutive()
        process = kernel.create_process("App")
        with pytest.raises(PanicRaised) as exc:
            kernel.execute(process, lambda: process.object_index.at(0x9999))
        assert exc.value.panic_id == KERN_EXEC_0

    def test_panic_request_passes_through(self):
        from repro.symbian.descriptors import TDes16

        kernel = KernelExecutive()
        process = kernel.create_process("App")

        def overflow():
            TDes16(2).append("long")

        with pytest.raises(PanicRaised) as exc:
            kernel.execute(process, overflow)
        assert exc.value.panic_id == USER_11

    def test_execute_returns_value_on_success(self):
        kernel = KernelExecutive()
        process = kernel.create_process("App")
        assert kernel.execute(process, lambda x: x * 2, 21) == 42

    def test_execute_in_dead_process_rejected(self):
        kernel = KernelExecutive()
        process = kernel.create_process("App")
        kernel.terminate_process(process)
        with pytest.raises(ValueError):
            kernel.execute(process, lambda: None)

    def test_ordinary_exception_propagates(self):
        kernel = KernelExecutive()
        process = kernel.create_process("App")
        with pytest.raises(ZeroDivisionError):
            kernel.execute(process, lambda: 1 / 0)


class TestRecovery:
    def test_panic_terminates_process(self):
        kernel = KernelExecutive()
        process = kernel.create_process("App")
        with pytest.raises(PanicRaised):
            kernel.execute(process, lambda: process.space.read(0))
        assert not process.alive
        assert kernel.find_process("App") is None

    def test_noncritical_panic_does_not_request_reboot(self):
        kernel = KernelExecutive()
        process = kernel.create_process("App")
        with pytest.raises(PanicRaised):
            kernel.execute(process, lambda: process.space.read(0))
        assert not kernel.reboot_requested

    def test_critical_panic_requests_reboot(self):
        bus = EventBus()
        reboots = []
        bus.subscribe(TOPIC_REBOOT_REQUEST, reboots.append)
        kernel = KernelExecutive(bus=bus)
        process = kernel.create_process("Phone", critical=True)
        with pytest.raises(PanicRaised):
            kernel.execute(process, lambda: process.space.read(0))
        assert kernel.reboot_requested
        assert len(reboots) == 1

    def test_panic_published_before_termination_effects(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TOPIC_PANIC, lambda e: seen.append(e))
        kernel = KernelExecutive(bus=bus)
        process = kernel.create_process("App")
        with pytest.raises(PanicRaised):
            kernel.execute(process, lambda: process.space.read(0))
        assert len(seen) == 1
        event = seen[0]
        assert event.panic_id == KERN_EXEC_3
        assert event.process_name == "App"

    def test_panic_log_accumulates(self):
        kernel = KernelExecutive()
        for name in ("A", "B"):
            process = kernel.create_process(name)
            with pytest.raises(PanicRaised):
                kernel.execute(process, lambda p=process: p.space.read(0))
        assert [e.process_name for e in kernel.panic_log] == ["A", "B"]

    def test_panic_event_carries_time(self):
        times = iter([123.0])
        kernel = KernelExecutive(time_fn=lambda: next(times))
        process = kernel.create_process("App")
        with pytest.raises(PanicRaised):
            kernel.execute(process, lambda: process.space.read(0))
        assert kernel.panic_log[0].time == 123.0

    def test_direct_panic_api(self):
        kernel = KernelExecutive()
        process = kernel.create_process("App")
        with pytest.raises(PanicRaised):
            kernel.panic(process, KERN_EXEC_3, "forced")
        assert not process.alive

    def test_request_reboot_without_panic(self):
        bus = EventBus()
        got = []
        bus.subscribe(TOPIC_REBOOT_REQUEST, got.append)
        kernel = KernelExecutive(bus=bus)
        kernel.request_reboot("watchdog")
        assert kernel.reboot_requested
        assert got == ["watchdog"]
