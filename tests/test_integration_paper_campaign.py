"""End-to-end integration: the paper-scale campaign reproduces the
paper's shape.

These assertions are deliberately loose (factor-level, not
percent-level): the reproduction targets *who wins and by roughly what
factor*, not the authors' exact fleet.  Every bound here corresponds to
a claim in the paper's §6 or §4.
"""

import pytest

from repro.experiments import paper
from repro.symbian import panics as P


@pytest.fixture(scope="module")
def report(paper_campaign):
    return paper_campaign.report


class TestScale:
    def test_twenty_five_phones(self, paper_campaign):
        assert paper_campaign.dataset.phone_count == 25

    def test_hundreds_of_hl_events(self, report):
        assert report.availability.freeze_count > 150
        assert report.availability.self_shutdown_count > 200
        assert len(report.study.shutdowns) > 800

    def test_hundreds_of_panics(self, report):
        assert report.panic_table.total > 200


class TestHeadlineFindings:
    def test_mtbf_freeze_within_factor_1_5(self, report):
        assert (
            paper.MTBF_FREEZE_HOURS / 1.5
            < report.availability.mtbf_freeze_hours
            < paper.MTBF_FREEZE_HOURS * 1.5
        )

    def test_mtbs_within_factor_1_5(self, report):
        assert (
            paper.MTBS_HOURS / 1.5
            < report.availability.mtbf_self_shutdown_hours
            < paper.MTBS_HOURS * 1.5
        )

    def test_failure_every_roughly_11_days(self, report):
        assert 8.0 < report.availability.failure_interval_days < 16.0

    def test_self_shutdowns_more_frequent_than_freezes(self, report):
        # Paper: MTBS (250 h) < MTBFr (313 h).
        assert (
            report.availability.mtbf_self_shutdown_hours
            < report.availability.mtbf_freeze_hours
        )


class TestFigure2:
    def test_self_shutdown_fraction_near_quarter(self, report):
        assert 0.15 < report.study.self_shutdown_fraction() < 0.35

    def test_median_self_shutdown_near_80s(self, report):
        assert 40.0 < report.study.median_self_shutdown_duration() < 160.0

    def test_night_mode_near_30000s(self, report):
        assert 20_000.0 < report.study.night_mode_duration() < 45_000.0

    def test_bimodality(self, report):
        """Both lobes populated, valley between them sparse."""
        hist = dict()
        for lo, hi, count in report.study.duration_histogram(
            [0, 360, 3600, 18000, 60000]
        ):
            hist[(lo, hi)] = count
        short = hist[(0, 360)]
        valley = hist[(360, 3600)]
        night = hist[(18000, 60000)]
        assert short > valley
        assert night > valley


class TestTable2:
    def test_kern_exec_3_dominates_at_about_56_percent(self, report):
        share = report.panic_table.access_violation_percent
        assert 40.0 < share < 70.0
        top = max(report.panic_table.rows, key=lambda r: r.count)
        assert top.panic_id == P.KERN_EXEC_3

    def test_heap_share_near_18_percent(self, report):
        assert 10.0 < report.panic_table.heap_management_percent < 28.0

    def test_all_twenty_types_appear_at_scale(self, report):
        observed = {row.panic_id for row in report.panic_table.rows}
        # Rare types (0.25% ~ 1 event) can be missed in one campaign;
        # require at least 16 of the 20 and all the non-rare ones.
        assert len(observed & set(paper.PAPER_TABLE2)) >= 16
        for pid, pct in paper.PAPER_TABLE2.items():
            if pct >= 1.0:
                assert pid in observed, f"missing {pid}"

    def test_rank_correlation_with_paper(self, report):
        """Major panic types appear in roughly the paper's order."""
        measured = {row.panic_id: row.percent for row in report.panic_table.rows}
        majors = [pid for pid, pct in paper.PAPER_TABLE2.items() if pct >= 2.0]
        for pid in majors:
            assert measured.get(pid, 0.0) > 0.5


class TestFigure3:
    def test_cascade_share_near_25_percent(self, report):
        assert 12.0 < report.bursts.cascade_panic_percent < 40.0

    def test_size_distribution_decreasing(self, report):
        dist = report.bursts.size_distribution()
        assert dist[1] > dist.get(2, 0.0) > dist.get(3, 0.0)

    def test_singletons_majority(self, report):
        assert report.bursts.size_distribution()[1] > 55.0


class TestFigure5:
    def test_about_half_of_panics_hl_related(self, report):
        assert 38.0 < report.hl.related_percent < 65.0

    def test_all_shutdowns_adds_a_few_percent(self, report):
        delta = (
            report.hl.related_percent_all_shutdowns - report.hl.related_percent
        )
        assert 0.0 <= delta < 12.0

    def test_application_categories_never_hl(self, report):
        # "Never" up to chance coincidence: with ~900 HL events on the
        # timeline, an isolated app panic can land within five minutes
        # of an unrelated HL event.  Allow at most one such collision.
        for category in (P.EIKON_LISTBOX, P.EIKCOCTL, P.MMF_AUDIO_CLIENT, P.KERN_SVR):
            row = report.hl.row(category)
            if row is not None and row.total > 0:
                assert row.related <= 1

    def test_msgs_client_always_self_shutdown(self, report):
        row = report.hl.row(P.MSGS_CLIENT)
        assert row is not None and row.total > 0
        assert row.self_shutdown_related == row.total

    def test_system_categories_mostly_hl(self, report):
        for category in (P.KERN_EXEC, P.E32USER_CBASE, P.USER):
            row = report.hl.row(category)
            assert row is not None
            assert row.related_percent > 30.0

    def test_viewsrv_freeze_symptomatic(self, report):
        row = report.hl.row(P.VIEW_SRV)
        if row is not None and row.related:
            assert row.freeze_related >= row.self_shutdown_related


class TestTable3:
    def test_realtime_share_near_45_percent(self, report):
        assert 30.0 < report.activity.realtime_percent < 60.0

    def test_voice_dominates_messaging(self, report):
        totals = report.activity.row_totals
        assert totals.get("voice_call", 0.0) > totals.get("message", 0.0)

    def test_user_panics_dominated_by_voice(self, report):
        # USER defects activate only during voice calls; a straggling
        # cascade panic can land just after the call's end record.
        voice = report.activity.cells.get(("voice_call", P.USER), 0.0)
        other = report.activity.cells.get(
            ("unspecified", P.USER), 0.0
        ) + report.activity.cells.get(("message", P.USER), 0.0)
        assert voice >= 4 * max(other, 1e-9) or other == 0.0

    def test_viewsrv_panics_overwhelmingly_during_voice(self, report):
        # ViewSrv defects activate only during calls, but a propagated
        # cascade panic can land moments after the call's end record —
        # the same measurement noise a real log would show.  Voice must
        # still dominate the ViewSrv row.
        voice = report.activity.cells.get(("voice_call", P.VIEW_SRV), 0.0)
        other = report.activity.cells.get(
            ("unspecified", P.VIEW_SRV), 0.0
        ) + report.activity.cells.get(("message", P.VIEW_SRV), 0.0)
        assert voice > other

    def test_unspecified_is_largest_row(self, report):
        totals = report.activity.row_totals
        assert totals["unspecified"] == max(totals.values())


class TestTable4AndFigure6:
    def test_modal_running_apps_is_one(self, report):
        assert report.runapps.modal_app_count == 1

    def test_distribution_decreasing_after_mode(self, report):
        dist = report.runapps.count_distribution
        assert dist.get(1, 0.0) > dist.get(2, 0.0) > dist.get(3, 0.0)

    def test_messages_among_top_apps(self, report):
        top = [app for app, _pct in report.runapps.top_apps(4)]
        assert "Messages" in top or "Telephone" in top

    def test_table_percentages_bounded(self, report):
        for cell in report.runapps.table.values():
            for value in cell.values():
                assert 0.0 <= value <= 100.0


class TestAnalysisVsGroundTruth:
    """The offline pipeline recovers what the simulator actually did."""

    def test_freeze_recovery(self, paper_campaign):
        truth = paper_campaign.ground_truth
        measured = paper_campaign.report.availability.freeze_count
        assert measured <= truth["freezes"]
        # Losses only from freezes unresolved at campaign end or during
        # logger-off windows: a small fraction.
        assert measured >= truth["freezes"] * 0.9

    def test_panic_recovery(self, paper_campaign):
        truth = paper_campaign.ground_truth
        measured = paper_campaign.dataset.total_panics
        assert measured <= truth["panics"]
        assert measured >= truth["panics"] * 0.9

    def test_self_shutdown_filter_quality(self, paper_campaign):
        truth = paper_campaign.ground_truth
        measured = paper_campaign.report.availability.self_shutdown_count
        # The 360 s filter misclassifies some quick user reboots as
        # self-shutdowns and some slow self-shutdowns as user ones;
        # the paper accepts the same confusion.
        assert measured == pytest.approx(truth["self_shutdowns"], rel=0.25)

    def test_observed_hours_recovered(self, paper_campaign):
        truth = paper_campaign.ground_truth
        measured = paper_campaign.dataset.total_observed_hours()
        assert measured == pytest.approx(truth["observed_hours"], rel=0.02)
