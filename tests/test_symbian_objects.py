"""Tests for CObject reference counting and the object index/handles."""

import pytest

from repro.symbian.cobject import CObject, CObjectCon
from repro.symbian.errors import BadHandle, PanicRequest
from repro.symbian.handles import FIRST_HANDLE, ObjectIndex, RHandleBase
from repro.symbian.panics import E32USER_CBASE_33, KERN_SVR_0


class TestCObject:
    def test_initial_count_is_one(self):
        assert CObject().access_count == 1

    def test_open_increments(self):
        obj = CObject()
        obj.open_ref()
        assert obj.access_count == 2

    def test_close_decrements_and_deletes_at_zero(self):
        obj = CObject()
        obj.close()
        assert obj.deleted

    def test_close_with_refs_keeps_alive(self):
        obj = CObject()
        obj.open_ref()
        obj.close()
        assert not obj.deleted
        assert obj.access_count == 1

    def test_delete_with_single_ref_ok(self):
        obj = CObject()
        obj.delete()
        assert obj.deleted

    def test_delete_with_outstanding_refs_panics_33(self):
        obj = CObject("session")
        obj.open_ref()
        with pytest.raises(PanicRequest) as exc:
            obj.delete()
        assert exc.value.panic_id == E32USER_CBASE_33

    def test_use_after_delete_panics(self):
        obj = CObject()
        obj.delete()
        with pytest.raises(PanicRequest):
            obj.open_ref()
        with pytest.raises(PanicRequest):
            obj.close()
        with pytest.raises(PanicRequest):
            obj.delete()

    def test_on_delete_hook(self):
        calls = []

        class Hooked(CObject):
            def on_delete(self):
                calls.append("deleted")

        Hooked().close()
        assert calls == ["deleted"]

    def test_repr(self):
        obj = CObject("conn")
        assert "conn" in repr(obj)
        obj.delete()
        assert "deleted" in repr(obj)


class TestCObjectCon:
    def test_add_and_count(self):
        con = CObjectCon()
        con.add(CObject("a"))
        assert con.count == 1

    def test_add_deleted_rejected(self):
        con = CObjectCon()
        obj = CObject()
        obj.delete()
        with pytest.raises(ValueError):
            con.add(obj)

    def test_find_by_name(self):
        con = CObjectCon()
        obj = CObject("target")
        con.add(CObject("other"))
        con.add(obj)
        assert con.find_by_name("target") is obj

    def test_find_skips_deleted(self):
        con = CObjectCon()
        obj = CObject("x")
        con.add(obj)
        obj.delete()
        assert con.find_by_name("x") is None

    def test_remove(self):
        con = CObjectCon()
        obj = CObject("x")
        con.add(obj)
        con.remove(obj)
        assert con.count == 0

    def test_iteration(self):
        con = CObjectCon()
        a, b = CObject("a"), CObject("b")
        con.add(a)
        con.add(b)
        assert list(con) == [a, b]


class TestObjectIndex:
    def test_add_returns_unique_handles(self):
        index = ObjectIndex()
        a = index.add(object())
        b = index.add(object())
        assert a != b
        assert a >= FIRST_HANDLE

    def test_at_resolves(self):
        index = ObjectIndex()
        obj = object()
        handle = index.add(obj)
        assert index.at(handle) is obj

    def test_at_unknown_raises_bad_handle(self):
        index = ObjectIndex()
        with pytest.raises(BadHandle) as exc:
            index.at(0x9999)
        assert exc.value.handle == 0x9999

    def test_close_removes(self):
        index = ObjectIndex()
        handle = index.add(object())
        index.close(handle)
        assert not index.contains(handle)

    def test_close_unknown_panics_kern_svr_0(self):
        index = ObjectIndex()
        with pytest.raises(PanicRequest) as exc:
            index.close(0x1234)
        assert exc.value.panic_id == KERN_SVR_0

    def test_close_invokes_object_close(self):
        index = ObjectIndex()
        obj = CObject()
        handle = index.add(obj)
        index.close(handle)
        assert obj.deleted

    def test_count_and_handles(self):
        index = ObjectIndex()
        h = index.add(object())
        assert index.count == 1
        assert index.handles() == (h,)


class TestRHandleBase:
    def test_open_and_resolve(self):
        index = ObjectIndex()
        handle = RHandleBase(index)
        obj = object()
        handle.open_object(obj)
        assert handle.object() is obj

    def test_resolve_unopened_raises_bad_handle(self):
        handle = RHandleBase(ObjectIndex())
        with pytest.raises(BadHandle):
            handle.object()

    def test_close_zeroes_handle(self):
        index = ObjectIndex()
        handle = RHandleBase(index)
        handle.open_object(object())
        handle.close()
        assert handle.handle == 0

    def test_double_close_panics_kern_svr_0(self):
        index = ObjectIndex()
        handle = RHandleBase(index)
        handle.open_object(object())
        handle.close()
        with pytest.raises(PanicRequest) as exc:
            handle.close()
        assert exc.value.panic_id == KERN_SVR_0

    def test_corrupt_handle_copy_close_panics(self):
        index = ObjectIndex()
        handle = RHandleBase(index)
        handle.open_object(object())
        saved = handle.handle
        handle.close()
        handle.handle = saved
        with pytest.raises(PanicRequest) as exc:
            handle.close()
        assert exc.value.panic_id == KERN_SVR_0
