"""Tests for the system servers."""

import pytest

from repro.core.events import EventBus
from repro.symbian.errors import PanicRaised
from repro.symbian.kernel import KernelExecutive
from repro.symbian.panics import VIEW_SRV_11
from repro.symbian.servers.apparch import TOPIC_APPS_CHANGED, AppArchServer
from repro.symbian.servers.flogger import FileLogger
from repro.symbian.servers.logdb import TOPIC_LOG_EVENT, LogDatabaseServer, LogEvent
from repro.symbian.servers.rdebug import RDebug
from repro.symbian.servers.sysagent import TOPIC_POWER_CHANGED, SystemAgent
from repro.symbian.servers.viewsrv import ViewServer


class TestAppArch:
    def test_start_stop(self):
        server = AppArchServer()
        server.app_started("Messages")
        assert server.running_apps() == ("Messages",)
        server.app_stopped("Messages")
        assert server.running_apps() == ()

    def test_duplicate_start_idempotent(self):
        server = AppArchServer()
        server.app_started("Clock")
        server.app_started("Clock")
        assert server.running_apps() == ("Clock",)

    def test_stop_unknown_ignored(self):
        AppArchServer().app_stopped("Ghost")

    def test_start_order_preserved(self):
        server = AppArchServer()
        server.app_started("A")
        server.app_started("B")
        assert server.running_apps() == ("A", "B")

    def test_change_notifications(self):
        bus = EventBus()
        server = AppArchServer(bus)
        snapshots = []
        bus.subscribe(TOPIC_APPS_CHANGED, snapshots.append)
        server.app_started("A")
        server.app_started("B")
        server.app_stopped("A")
        assert snapshots == [("A",), ("A", "B"), ("B",)]

    def test_no_notification_without_change(self):
        bus = EventBus()
        server = AppArchServer(bus)
        snapshots = []
        bus.subscribe(TOPIC_APPS_CHANGED, snapshots.append)
        server.app_started("A")
        server.app_started("A")
        assert len(snapshots) == 1

    def test_clear(self):
        server = AppArchServer()
        server.app_started("A")
        server.clear()
        assert server.running_apps() == ()

    def test_is_running(self):
        server = AppArchServer()
        server.app_started("A")
        assert server.is_running("A")
        assert not server.is_running("B")

    def test_ipc_app_list(self):
        from repro.symbian.ipc import RSessionBase
        from repro.symbian.servers.apparch import FN_APP_LIST

        server = AppArchServer()
        server.app_started("Log")
        buffer: list = []
        RSessionBase(server).send_receive(FN_APP_LIST, buffer)
        assert buffer == ["Log"]


class TestLogDatabase:
    def test_add_and_recent(self):
        server = LogDatabaseServer()
        server.add_event(1.0, "voice_call", "start")
        server.add_event(2.0, "voice_call", "end")
        recent = server.recent()
        assert [e.phase for e in recent] == ["start", "end"]

    def test_publishes_events(self):
        bus = EventBus()
        server = LogDatabaseServer(bus)
        seen = []
        bus.subscribe(TOPIC_LOG_EVENT, seen.append)
        server.add_event(1.0, "message", "start")
        assert seen[0].kind == "message"

    def test_capacity_bound(self):
        server = LogDatabaseServer(capacity=3)
        for i in range(10):
            server.add_event(float(i), "message", "start")
        assert server.count == 3
        assert server.recent(10)[0].time == 7.0

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            LogDatabaseServer().add_event(1.0, "gaming", "start")

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError):
            LogEvent(1.0, "message", "middle")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LogDatabaseServer(capacity=0)

    def test_recent_zero(self):
        assert LogDatabaseServer().recent(0) == ()

    def test_clear(self):
        server = LogDatabaseServer()
        server.add_event(1.0, "message", "start")
        server.clear()
        assert server.count == 0


class TestSystemAgent:
    def test_initial_state(self):
        agent = SystemAgent()
        assert agent.level == 1.0
        assert agent.state == "discharging"

    def test_charging_state(self):
        agent = SystemAgent()
        agent.set_charging(1.0, True)
        assert agent.state == "charging"

    def test_low_state(self):
        agent = SystemAgent()
        agent.set_level(1.0, 0.03)
        assert agent.state == "low"

    def test_level_clamped(self):
        agent = SystemAgent()
        agent.set_level(1.0, 2.0)
        assert agent.level == 1.0
        agent.set_level(2.0, -1.0)
        assert agent.level == 0.0

    def test_publishes_only_on_state_change(self):
        bus = EventBus()
        agent = SystemAgent(bus)
        seen = []
        bus.subscribe(TOPIC_POWER_CHANGED, lambda *a: seen.append(a))
        agent.set_level(1.0, 0.8)  # discharging -> discharging: silent
        assert seen == []
        agent.set_level(2.0, 0.04)  # -> low
        assert len(seen) == 1
        agent.set_charging(3.0, True)  # -> charging
        assert len(seen) == 2
        agent.set_charging(4.0, True)  # no change
        assert len(seen) == 2


class TestRDebug:
    def _panic(self, kernel, name="App"):
        process = kernel.create_process(name)
        with pytest.raises(PanicRaised):
            kernel.execute(process, lambda: process.space.read(0))

    def test_observer_notified(self):
        bus = EventBus()
        kernel = KernelExecutive(bus=bus)
        rdebug = RDebug(bus)
        events = []
        rdebug.register(events.append)
        self._panic(kernel)
        assert len(events) == 1
        assert events[0].process_name == "App"

    def test_multiple_observers(self):
        bus = EventBus()
        kernel = KernelExecutive(bus=bus)
        rdebug = RDebug(bus)
        a, b = [], []
        rdebug.register(a.append)
        rdebug.register(b.append)
        self._panic(kernel)
        assert len(a) == len(b) == 1

    def test_unregister(self):
        bus = EventBus()
        kernel = KernelExecutive(bus=bus)
        rdebug = RDebug(bus)
        events = []
        handler = events.append
        rdebug.register(handler)
        rdebug.unregister(handler)
        self._panic(kernel)
        assert events == []

    def test_unregister_unknown_ignored(self):
        bus = EventBus()
        RDebug(bus).unregister(lambda e: None)

    def test_detach_stops_notification(self):
        bus = EventBus()
        kernel = KernelExecutive(bus=bus)
        rdebug = RDebug(bus)
        events = []
        rdebug.register(events.append)
        rdebug.detach()
        self._panic(kernel)
        assert events == []

    def test_notified_counter(self):
        bus = EventBus()
        kernel = KernelExecutive(bus=bus)
        rdebug = RDebug(bus)
        self._panic(kernel, "A")
        self._panic(kernel, "B")
        assert rdebug.notified == 2


class TestViewServer:
    def test_responsive_app_survives_ping(self):
        kernel = KernelExecutive()
        viewsrv = ViewServer(kernel)
        process = kernel.create_process("App")
        viewsrv.register(process)
        viewsrv.report_handler_duration(process, 1.0)
        viewsrv.ping(process)
        assert process.alive

    def test_monopolizing_app_panics_viewsrv_11(self):
        kernel = KernelExecutive()
        viewsrv = ViewServer(kernel, deadline=10.0)
        process = kernel.create_process("App")
        viewsrv.register(process)
        viewsrv.report_handler_duration(process, 30.0)
        with pytest.raises(PanicRaised) as exc:
            viewsrv.ping(process)
        assert exc.value.panic_id == VIEW_SRV_11
        assert not process.alive

    def test_unregistered_app_not_pinged(self):
        kernel = KernelExecutive()
        viewsrv = ViewServer(kernel)
        process = kernel.create_process("App")
        viewsrv.report_handler_duration(process, 100.0)  # not registered
        viewsrv.ping(process)
        assert process.alive

    def test_exactly_at_deadline_survives(self):
        kernel = KernelExecutive()
        viewsrv = ViewServer(kernel, deadline=10.0)
        process = kernel.create_process("App")
        viewsrv.register(process)
        viewsrv.report_handler_duration(process, 10.0)
        viewsrv.ping(process)
        assert process.alive

    def test_ping_all_skips_dead_processes(self):
        kernel = KernelExecutive()
        viewsrv = ViewServer(kernel)
        process = kernel.create_process("App")
        viewsrv.register(process)
        kernel.terminate_process(process)
        viewsrv.ping_all()  # must not raise

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            ViewServer(KernelExecutive(), deadline=0.0)

    def test_unregister(self):
        kernel = KernelExecutive()
        viewsrv = ViewServer(kernel, deadline=1.0)
        process = kernel.create_process("App")
        viewsrv.register(process)
        viewsrv.unregister(process)
        viewsrv.report_handler_duration(process, 100.0)
        viewsrv.ping(process)
        assert process.alive


class TestFileLogger:
    def test_write_without_directory_dropped(self):
        flogger = FileLogger()
        assert not flogger.write("Xdir", "log.txt", "hello")
        assert flogger.read("Xdir", "log.txt") == ()
        assert flogger.dropped == 1

    def test_write_with_directory_stored(self):
        flogger = FileLogger()
        flogger.create_directory("Xdir")
        assert flogger.write("Xdir", "log.txt", "hello")
        assert flogger.read("Xdir", "log.txt") == ("hello",)

    def test_directories_are_specific(self):
        flogger = FileLogger()
        flogger.create_directory("Xdir")
        assert not flogger.write("Ydir", "log.txt", "hello")

    def test_directory_exists(self):
        flogger = FileLogger()
        assert not flogger.directory_exists("Xdir")
        flogger.create_directory("Xdir")
        assert flogger.directory_exists("Xdir")

    def test_appends_in_order(self):
        flogger = FileLogger()
        flogger.create_directory("d")
        flogger.write("d", "f", "one")
        flogger.write("d", "f", "two")
        assert flogger.read("d", "f") == ("one", "two")
