"""Tests for fleet-heterogeneity analysis."""

import pytest

from repro.analysis.shutdowns import compute_shutdown_study
from repro.analysis.variability import PhoneRate, compute_variability
from repro.core.clock import HOUR
from repro.core.records import BootRecord, EnrollRecord
from tests.helpers import dataset_from_records


def boot(time, kind, beat_time):
    return BootRecord(time, kind, beat_time)


def phone_records(os_version="8.0", region="Italy", freeze_times=()):
    records = [
        EnrollRecord(0.0, "x", os_version, region),
        boot(0.0, "NONE", 0.0),
    ]
    for t in freeze_times:
        records.append(boot(t, "ALIVE", t - 100.0))
    return records


class TestPhoneRate:
    def test_rate_per_khr(self):
        rate = PhoneRate("p", observed_hours=2000.0, freezes=3, self_shutdowns=1)
        assert rate.failures == 4
        assert rate.rate_per_khr == pytest.approx(2.0)

    def test_zero_exposure(self):
        assert PhoneRate("p", 0.0, 5, 0).rate_per_khr == 0.0


class TestVariability:
    def make(self, spec, end_hours=1000.0):
        """spec: phone_id -> (os, region, n_freezes)."""
        records = {}
        for phone_id, (os_version, region, n) in spec.items():
            freeze_times = [3600.0 * (i + 1) * 10 for i in range(n)]
            recs = phone_records(os_version, region, freeze_times)
            records[phone_id] = recs
        dataset = dataset_from_records(records, end_time=end_hours * HOUR)
        study = compute_shutdown_study(dataset)
        return compute_variability(dataset, study)

    def test_per_phone_counts(self):
        stats = self.make({"a": ("8.0", "Italy", 3), "b": ("8.0", "USA", 1)})
        by_id = {p.phone_id: p for p in stats.phones}
        assert by_id["a"].freezes == 3
        assert by_id["b"].freezes == 1

    def test_homogeneous_fleet_not_rejected(self):
        spec = {f"p{i}": ("8.0", "Italy", 5) for i in range(10)}
        stats = self.make(spec)
        assert stats.p_value > 0.05
        assert not stats.heterogeneous

    def test_extreme_heterogeneity_rejected(self):
        spec = {f"cool{i}": ("8.0", "Italy", 0) for i in range(8)}
        spec["hot"] = ("8.0", "Italy", 60)
        stats = self.make(spec)
        assert stats.heterogeneous
        assert stats.p_value < 0.01

    def test_group_breakdowns(self):
        stats = self.make(
            {
                "a": ("8.0", "Italy", 4),
                "b": ("8.0", "Italy", 4),
                "c": ("9.0", "USA", 1),
            }
        )
        os_rates = {g.label: g for g in stats.by_os_version}
        assert os_rates["8.0"].phone_count == 2
        assert os_rates["8.0"].failures == 8
        assert os_rates["9.0"].failures == 1
        region_rates = {g.label: g for g in stats.by_region}
        assert region_rates["Italy"].rate_per_khr > region_rates["USA"].rate_per_khr

    def test_pooled_rate(self):
        stats = self.make({"a": ("8.0", "Italy", 2), "b": ("8.0", "USA", 2)})
        # 4 failures over 2000 phone-hours.
        assert stats.pooled_rate_per_khr == pytest.approx(2.0)

    def test_spread_ratio(self):
        stats = self.make({"a": ("8.0", "Italy", 8), "b": ("8.0", "USA", 2)})
        assert stats.min_max_rate_ratio == pytest.approx(4.0)

    def test_no_failures_degenerate(self):
        stats = self.make({"a": ("8.0", "Italy", 0), "b": ("8.0", "USA", 0)})
        assert stats.p_value == 1.0
        assert stats.pooled_rate_per_khr == 0.0


class TestOnRealCampaign:
    def test_fleet_heterogeneity_is_mild(self, paper_campaign):
        """Per-phone rates spread over a modest range (behaviour-driven:
        night-off habits and activity levels modulate exposure), with
        no extreme-outlier handsets.  Whether the homogeneity test
        formally rejects depends on the realization; what must hold is
        that the dispersion stays mild — individual-phone MTBFs from a
        25-phone study carry little signal either way."""
        from repro.analysis.variability import compute_variability

        stats = compute_variability(
            paper_campaign.dataset, paper_campaign.report.study
        )
        assert len(stats.phones) == 25
        # No pathological outliers: chi-square within a small multiple
        # of its dof, rate spread within an order of magnitude.
        assert stats.chi_square < 3 * stats.degrees_of_freedom
        assert stats.min_max_rate_ratio < 10.0

    def test_groups_cover_all_phones(self, paper_campaign):
        from repro.analysis.variability import compute_variability

        stats = compute_variability(
            paper_campaign.dataset, paper_campaign.report.study
        )
        assert sum(g.phone_count for g in stats.by_os_version) == 25
        assert sum(g.phone_count for g in stats.by_region) == 25
        assert {g.label for g in stats.by_region} <= {"Italy", "USA"}
