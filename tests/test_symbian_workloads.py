"""Tests for the heap workloads: discipline vs leaks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rand import Stream
from repro.symbian.errors import PanicRaised, PanicRequest
from repro.symbian.kernel import KernelExecutive
from repro.symbian.panics import E32USER_CBASE_69
from repro.symbian.workloads import (
    UI_OBJECT_WORDS,
    DisciplinedApplication,
    LeakyApplication,
    drive_until_exhaustion,
)


def make_process(heap_words=2048):
    kernel = KernelExecutive()
    return kernel, kernel.create_process("UiApp", heap_words=heap_words)


class TestDisciplinedApplication:
    def test_footprint_stays_bounded(self):
        _kernel, process = make_process()
        app = DisciplinedApplication(process)
        for _ in range(500):
            assert app.handle_ui_event()
        assert app.live_cells == 0
        assert app.operations == 500

    def test_never_exhausts_within_budget(self):
        _kernel, process = make_process(heap_words=256)
        app = DisciplinedApplication(process)
        count = drive_until_exhaustion(app, max_operations=2_000)
        assert count == 2_000
        assert app.allocation_failures == 0


class TestLeakyApplication:
    def test_leak_grows_heap(self):
        _kernel, process = make_process()
        app = LeakyApplication(process, Stream(5), leak_probability=0.5)
        for _ in range(40):
            app.handle_ui_event()
        assert app.live_cells > 0
        assert app.live_cells == app.leaked_cells

    def test_trapped_exhaustion_is_clean(self):
        _kernel, process = make_process(heap_words=2048)
        app = LeakyApplication(process, Stream(5), leak_probability=1.0)
        count = drive_until_exhaustion(app)
        # Heap of 2048 words, 33 per (payload+header) allocation.
        expected = 2048 // (UI_OBJECT_WORDS + 1)
        assert count == pytest.approx(expected, abs=2)
        assert app.allocation_failures == 1
        assert process.alive  # degraded, not dead

    def test_untrapped_exhaustion_panics_69(self):
        kernel, process = make_process(heap_words=1024)
        app = LeakyApplication(
            process, Stream(5), leak_probability=1.0, trap_allocation=False
        )

        def run_to_death():
            while app.handle_ui_event():
                pass

        with pytest.raises(PanicRaised) as exc:
            kernel.execute(process, run_to_death)
        assert exc.value.panic_id == E32USER_CBASE_69
        assert not process.alive

    def test_leak_probability_validated(self):
        _kernel, process = make_process()
        with pytest.raises(ValueError):
            LeakyApplication(process, Stream(1), leak_probability=1.5)

    def test_zero_leak_probability_behaves_like_disciplined(self):
        _kernel, process = make_process(heap_words=256)
        app = LeakyApplication(process, Stream(5), leak_probability=0.0)
        count = drive_until_exhaustion(app, max_operations=1_000)
        assert count == 1_000
        assert app.live_cells == 0

    def test_higher_leak_rate_dies_sooner(self):
        def lifetime(prob):
            _kernel, process = make_process(heap_words=4096)
            app = LeakyApplication(process, Stream(11), leak_probability=prob)
            return drive_until_exhaustion(app, max_operations=50_000)

        assert lifetime(0.8) < lifetime(0.2) < lifetime(0.05)


@given(
    ops=st.integers(min_value=1, max_value=300),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_disciplined_app_never_leaks_property(ops, seed):
    """Invariant: under ANY operation count the disciplined app's heap
    is empty after every operation returns."""
    del seed  # the disciplined app draws no randomness
    _kernel, process = make_process()
    app = DisciplinedApplication(process)
    for _ in range(ops):
        if not app.handle_ui_event():
            break
        assert process.heap.cell_count == 0


@given(
    leak_probability=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_leaky_app_live_cells_equal_leaks_property(leak_probability, seed):
    """Invariant: every live cell of the leaky app is an accounted leak."""
    _kernel, process = make_process(heap_words=16_384)
    app = LeakyApplication(process, Stream(seed), leak_probability=leak_probability)
    for _ in range(100):
        if not app.handle_ui_event():
            break
    assert app.live_cells == app.leaked_cells
