"""Tests for inter-failure reliability modelling."""

import math

import pytest

from repro.analysis.coalescence import HL_FREEZE, HL_SELF_SHUTDOWN, HlEvent
from repro.analysis.reliability import (
    compute_reliability,
    fit_reliability,
    interfailure_intervals_hours,
)
from repro.core.clock import HOUR
from repro.core.rand import Stream


class TestIntervalExtraction:
    def test_gaps_within_one_phone(self):
        events = [
            HlEvent("p", 0.0, HL_FREEZE),
            HlEvent("p", 2 * HOUR, HL_FREEZE),
            HlEvent("p", 5 * HOUR, HL_FREEZE),
        ]
        assert interfailure_intervals_hours(events) == [2.0, 3.0]

    def test_phones_do_not_mix(self):
        events = [
            HlEvent("a", 0.0, HL_FREEZE),
            HlEvent("b", 1 * HOUR, HL_FREEZE),
            HlEvent("a", 4 * HOUR, HL_FREEZE),
        ]
        assert interfailure_intervals_hours(events) == [4.0]

    def test_kind_filter(self):
        events = [
            HlEvent("p", 0.0, HL_FREEZE),
            HlEvent("p", 1 * HOUR, HL_SELF_SHUTDOWN),
            HlEvent("p", 3 * HOUR, HL_FREEZE),
        ]
        assert interfailure_intervals_hours(events, [HL_FREEZE]) == [3.0]
        assert interfailure_intervals_hours(events) == [1.0, 2.0]

    def test_unsorted_input_tolerated(self):
        events = [
            HlEvent("p", 5 * HOUR, HL_FREEZE),
            HlEvent("p", 0.0, HL_FREEZE),
        ]
        assert interfailure_intervals_hours(events) == [5.0]

    def test_zero_gaps_dropped(self):
        events = [HlEvent("p", 0.0, HL_FREEZE), HlEvent("p", 0.0, HL_FREEZE)]
        assert interfailure_intervals_hours(events) == []


class TestFitting:
    def exponential_sample(self, mean, n=400, seed=5):
        stream = Stream(seed)
        return [stream.exponential(mean) for _ in range(n)]

    def test_small_sample_yields_no_fits(self):
        stats = fit_reliability([1.0, 2.0, 3.0])
        assert stats.exponential is None
        assert stats.weibull is None
        assert stats.preferred_model == "insufficient data"
        assert math.isnan(stats.weibull_shape)

    def test_exponential_sample_recovers_mean(self):
        stats = fit_reliability(self.exponential_sample(mean=100.0))
        assert stats.exponential is not None
        assert stats.exponential.params["mean_hours"] == pytest.approx(
            100.0, rel=0.15
        )
        assert stats.exponential.ks_pvalue > 0.01

    def test_exponential_sample_gives_shape_near_one(self):
        stats = fit_reliability(self.exponential_sample(mean=50.0))
        assert stats.weibull_shape == pytest.approx(1.0, abs=0.12)

    def test_wearout_sample_gives_shape_above_one(self):
        stream = Stream(9)
        # Sum of two exponentials (Erlang-2): increasing hazard.
        sample = [
            stream.exponential(50.0) + stream.exponential(50.0)
            for _ in range(400)
        ]
        stats = fit_reliability(sample)
        assert stats.weibull_shape > 1.2

    def test_infant_mortality_gives_shape_below_one(self):
        stream = Stream(10)
        # Mixture of short and long regimes: decreasing hazard.
        sample = [
            stream.exponential(5.0 if stream.bernoulli(0.5) else 200.0)
            for _ in range(400)
        ]
        stats = fit_reliability(sample)
        assert stats.weibull_shape < 0.9

    def test_mean_and_precision(self):
        stats = fit_reliability([10.0] * 100)
        assert stats.mean_hours == pytest.approx(10.0)
        assert stats.mtbf_relative_precision() == pytest.approx(0.1)

    def test_nonpositive_intervals_filtered(self):
        stats = fit_reliability([-1.0, 0.0] + self.exponential_sample(10.0, n=50))
        assert stats.sample_size == 50

    def test_empty_sample(self):
        stats = fit_reliability([])
        assert stats.mean_hours == float("inf")
        assert stats.mtbf_relative_precision() == float("inf")


class TestOnRealCampaign:
    def test_shapes_near_one(self, paper_campaign):
        """The campaign's failure process is memoryless-dominated: the
        fitted Weibull shape must sit near 1 for every event kind."""
        rel = compute_reliability(paper_campaign.dataset, paper_campaign.report.study)
        for kind in ("freeze", "self_shutdown", "combined"):
            stats = rel[kind]
            assert stats.sample_size > 100
            assert 0.8 < stats.weibull_shape < 1.25

    def test_exponential_not_rejected(self, paper_campaign):
        rel = compute_reliability(paper_campaign.dataset, paper_campaign.report.study)
        assert rel["combined"].exponential.ks_pvalue > 0.01

    def test_combined_mean_consistent_with_mtbf(self, paper_campaign):
        """Interval mean ~ pooled MTBF (they differ by censoring: the
        open interval at each phone's end is not an observed gap)."""
        rel = compute_reliability(paper_campaign.dataset, paper_campaign.report.study)
        availability = paper_campaign.report.availability
        pooled = availability.observed_hours_total / (
            availability.freeze_count + availability.self_shutdown_count
        )
        assert rel["combined"].mean_hours == pytest.approx(pooled, rel=0.25)


class TestDegenerateSamples:
    def test_constant_sample_skips_weibull(self):
        """Near-zero spread would hit scipy's catastrophic-cancellation
        path inside weibull_min.fit; the guard returns no Weibull fit
        (and with filterwarnings=error, a warning would fail this test)."""
        stats = fit_reliability([10.0] * 100)
        assert stats.weibull is None
        assert stats.exponential is not None
        assert stats.preferred_model == "insufficient data"
        assert math.isnan(stats.weibull_shape)

    def test_tiny_relative_spread_skips_weibull(self):
        stats = fit_reliability([10.0] * 50 + [10.0 + 1e-12] * 50)
        assert stats.weibull is None

    def test_normal_sample_still_fits_weibull(self):
        stats = fit_reliability(self.exponential_sample(10.0, n=200))
        assert stats.weibull is not None

    @staticmethod
    def exponential_sample(mean, n):
        stream = Stream(99)
        return [stream.exponential(mean) for _ in range(n)]
