"""Tests for the file server: sessions, sharing, power-cut durability."""

import pytest

from repro.symbian.errors import KERR_IN_USE, KERR_NONE, KERR_NOT_FOUND
from repro.symbian.fileserver import FileServer


@pytest.fixture()
def server():
    return FileServer()


class TestNamespace:
    def test_create(self, server):
        assert server.connect().create("c:\\logs\\beats.dat") == KERR_NONE
        assert server.exists("c:\\logs\\beats.dat")

    def test_create_duplicate_in_use(self, server):
        session = server.connect()
        session.create("f")
        assert session.create("f") == KERR_IN_USE

    def test_delete(self, server):
        session = server.connect()
        session.create("f")
        assert session.delete("f") == KERR_NONE
        assert not server.exists("f")

    def test_delete_missing_not_found(self, server):
        assert server.connect().delete("ghost") == KERR_NOT_FOUND

    def test_delete_open_file_in_use(self, server):
        session = server.connect()
        session.create("f")
        handle = session.open_write("f")
        assert session.delete("f") == KERR_IN_USE
        handle.close()
        assert session.delete("f") == KERR_NONE

    def test_file_names_sorted(self, server):
        session = server.connect()
        session.create("b")
        session.create("a")
        assert server.file_names() == ["a", "b"]


class TestSharing:
    def test_single_writer(self, server):
        session = server.connect()
        session.create("f")
        first = session.open_write("f")
        assert first is not None
        assert session.open_write("f") is None  # exclusive

    def test_writer_slot_released_on_close(self, server):
        session = server.connect()
        session.create("f")
        first = session.open_write("f")
        first.close()
        assert session.open_write("f") is not None

    def test_many_readers(self, server):
        session = server.connect()
        session.create("f")
        readers = [session.open_read("f") for _ in range(3)]
        assert all(r is not None for r in readers)

    def test_open_missing_returns_none(self, server):
        session = server.connect()
        assert session.open_write("ghost") is None
        assert session.open_read("ghost") is None

    def test_session_close_releases_subsessions(self, server):
        session = server.connect()
        session.create("f")
        session.open_write("f")
        session.close()
        assert server.connect().open_write("f") is not None

    def test_double_close_is_noop(self, server):
        session = server.connect()
        session.create("f")
        handle = session.open_write("f")
        handle.close()
        handle.close()


class TestReadWrite:
    def test_write_then_read(self, server):
        session = server.connect()
        session.create("f")
        writer = session.open_write("f")
        writer.write("BOOT|0.0|NONE|0.0\n")
        reader = session.open_read("f")
        assert reader.read_all() == "BOOT|0.0|NONE|0.0\n"
        assert writer.size() == len("BOOT|0.0|NONE|0.0\n")

    def test_write_on_reader_fails(self, server):
        session = server.connect()
        session.create("f")
        reader = session.open_read("f")
        assert reader.read_all() == ""
        assert reader.write("x") == KERR_NOT_FOUND

    def test_operations_on_closed_file_raise(self, server):
        session = server.connect()
        session.create("f")
        handle = session.open_write("f")
        handle.close()
        with pytest.raises(ValueError):
            handle.write("x")
        with pytest.raises(ValueError):
            handle.read_all()


class TestDurability:
    def test_unflushed_data_lost_on_power_cut(self, server):
        session = server.connect()
        session.create("f")
        writer = session.open_write("f")
        writer.write("durable\n")
        writer.flush()
        writer.write("volatile")
        server.power_cut()
        assert server.committed_content("f") == "durable\n"

    def test_flushed_data_survives(self, server):
        session = server.connect()
        session.create("f")
        writer = session.open_write("f")
        writer.write("line\n")
        writer.flush()
        server.power_cut()
        assert server.committed_content("f") == "line\n"

    def test_power_cut_releases_handles(self, server):
        session = server.connect()
        session.create("f")
        session.open_write("f")
        server.power_cut()
        fresh = server.connect()
        assert fresh.open_write("f") is not None

    def test_running_system_sees_pending(self, server):
        """Before the cut, readers see pending data — it is only the
        durable copy that lags.  This is exactly why the heartbeat's
        final REBOOT write must be flushed before power drops."""
        session = server.connect()
        session.create("f")
        writer = session.open_write("f")
        writer.write("pending")
        reader = session.open_read("f")
        assert reader.read_all() == "pending"
        assert server.committed_content("f") == ""

    def test_committed_content_missing_file(self, server):
        assert server.committed_content("ghost") is None


class TestErrorNames:
    def test_known_codes(self):
        from repro.symbian.errors import error_name

        assert error_name(0) == "KErrNone"
        assert error_name(-1) == "KErrNotFound"
        assert error_name(-4) == "KErrNoMemory"
        assert error_name(-14) == "KErrInUse"
        assert error_name(-3) == "KErrCancel"

    def test_unknown_code(self):
        from repro.symbian.errors import error_name

        assert error_name(-999) == "KErrUnknown(-999)"
