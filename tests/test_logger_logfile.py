"""Tests for log serialization, parsing, and storage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import LogFormatError
from repro.core.records import (
    ActivityRecord,
    BootRecord,
    EnrollRecord,
    PanicRecord,
    PowerRecord,
    RunningAppsRecord,
)
from repro.logger.logfile import LogStorage, parse_line, parse_lines, serialize_record


SAMPLES = [
    EnrollRecord(0.0, "phone-01", "8.0", "Italy"),
    BootRecord(10.0, "NONE", 0.0),
    PanicRecord(20.0, "KERN-EXEC", 3, "Camera"),
    ActivityRecord(30.0, "voice_call", "start"),
    RunningAppsRecord(40.0, ("Messages", "Clock")),
    PowerRecord(50.0, 0.75, "discharging"),
]


class TestSerialization:
    @pytest.mark.parametrize("record", SAMPLES, ids=lambda r: r.TAG)
    def test_roundtrip(self, record):
        assert parse_line(serialize_record(record)) == record

    def test_line_is_single_line(self):
        for record in SAMPLES:
            assert "\n" not in serialize_record(record)

    def test_separator_in_field_rejected(self):
        record = PanicRecord(1.0, "KERN|EXEC", 3, "x")
        with pytest.raises(LogFormatError):
            serialize_record(record)

    def test_newline_in_field_rejected(self):
        record = EnrollRecord(1.0, "phone\n01", "8.0", "Italy")
        with pytest.raises(LogFormatError):
            serialize_record(record)


class TestParsing:
    def test_empty_line_rejected(self):
        with pytest.raises(LogFormatError):
            parse_line("")

    def test_unknown_tag_rejected(self):
        with pytest.raises(LogFormatError):
            parse_line("WHAT|1.0|x")

    def test_truncated_line_rejected(self):
        line = serialize_record(SAMPLES[2])
        with pytest.raises(LogFormatError):
            parse_line(line[: len(line) // 2])

    def test_whitespace_stripped(self):
        line = "  " + serialize_record(SAMPLES[1]) + "  \n"
        assert parse_line(line) == SAMPLES[1]

    def test_tolerant_mode_skips_bad_lines(self):
        lines = [serialize_record(SAMPLES[0]), "GARBAGE", serialize_record(SAMPLES[1])]
        records = list(parse_lines(lines))
        assert len(records) == 2

    def test_tolerant_mode_skips_blank_lines(self):
        lines = ["", serialize_record(SAMPLES[0]), "   "]
        assert len(list(parse_lines(lines))) == 1

    def test_strict_mode_raises(self):
        lines = [serialize_record(SAMPLES[0]), "GARBAGE"]
        with pytest.raises(LogFormatError):
            list(parse_lines(lines, strict=True))


class TestLogStorage:
    def test_append_and_read_back(self):
        storage = LogStorage("p")
        for record in SAMPLES:
            storage.append_record(record)
        assert storage.records() == SAMPLES
        assert storage.line_count == len(SAMPLES)

    def test_lines_cursor(self):
        storage = LogStorage("p")
        storage.append_record(SAMPLES[0])
        storage.append_record(SAMPLES[1])
        assert len(storage.lines(1)) == 1

    def test_truncate_tail_models_power_loss(self):
        storage = LogStorage("p")
        storage.append_record(SAMPLES[0])
        storage.append_record(SAMPLES[2])
        storage.truncate_tail()
        records = storage.records()
        assert records == [SAMPLES[0]]  # truncated line skipped

    def test_truncate_empty_storage(self):
        LogStorage("p").truncate_tail()

    def test_last_record(self):
        storage = LogStorage("p")
        storage.append_record(SAMPLES[0])
        storage.append_record(SAMPLES[1])
        assert storage.last_record() == SAMPLES[1]

    def test_last_record_skips_corruption(self):
        storage = LogStorage("p")
        storage.append_record(SAMPLES[0])
        storage.append_raw("CORRUPT???")
        assert storage.last_record() == SAMPLES[0]

    def test_last_record_empty(self):
        assert LogStorage("p").last_record() is None

    def test_strict_records_raise_on_corruption(self):
        storage = LogStorage("p")
        storage.append_raw("JUNK")
        with pytest.raises(LogFormatError):
            storage.records(strict=True)


@given(
    time=st.floats(min_value=0, max_value=1e8),
    apps=st.lists(
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127
            ),
            min_size=1,
            max_size=12,
        ),
        max_size=6,
    ),
)
@settings(max_examples=100, deadline=None)
def test_runapp_roundtrip_property(time, apps):
    record = RunningAppsRecord(round(time, 3), tuple(apps))
    parsed = parse_line(serialize_record(record))
    assert parsed.apps == record.apps
    assert parsed.time == pytest.approx(record.time, abs=1e-3)
