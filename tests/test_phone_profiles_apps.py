"""Tests for user profiles and the application catalog."""

from repro.core.rand import RandomStreams
from repro.phone.apps import APP_CATALOG, app_ids, popularity_weights
from repro.phone.profiles import (
    OS_VERSION_WEIGHTS,
    REGION_WEIGHTS,
    UserProfile,
    make_profile,
)


class TestAppCatalog:
    def test_table4_apps_present(self):
        for app in (
            "Messages",
            "Telephone",
            "Camera",
            "Clock",
            "Log",
            "Contacts",
            "battery",
            "BT_Browser",
            "FExplorer",
            "TomTom",
        ):
            assert app in APP_CATALOG

    def test_catalog_keys_match_specs(self):
        for app_id, spec in APP_CATALOG.items():
            assert spec.app_id == app_id

    def test_popularity_weights_positive(self):
        for weight in popularity_weights().values():
            assert weight > 0

    def test_app_ids_order(self):
        assert app_ids() == tuple(APP_CATALOG)

    def test_lingering_apps_exist(self):
        lingering = [a for a, s in APP_CATALOG.items() if s.lingering]
        assert "Clock" in lingering
        assert "Log" in lingering

    def test_session_lengths_positive(self):
        for spec in APP_CATALOG.values():
            assert spec.median_session > 0
            assert spec.session_sigma > 0


class TestProfiles:
    def make(self, phone_id="phone-00", seed=42):
        return make_profile(phone_id, RandomStreams(seed).fork(phone_id))

    def test_deterministic(self):
        assert self.make() == self.make()

    def test_different_phones_differ(self):
        a = make_profile("phone-00", RandomStreams(42).fork("phone-00"))
        b = make_profile("phone-01", RandomStreams(42).fork("phone-01"))
        assert a != b

    def test_fields_in_sane_ranges(self):
        for index in range(50):
            profile = self.make(f"phone-{index:02d}", seed=index)
            assert 5.5 <= profile.wake_hour <= 12.0
            assert profile.sleep_hour <= 25.0
            assert profile.sleep_hour - profile.wake_hour >= 12.0
            assert 0.0 <= profile.night_off_prob <= 0.9
            assert 0.0 <= profile.forget_charge_prob <= 0.1
            assert profile.calls_per_day > 0
            assert profile.messages_per_day > 0
            assert profile.app_sessions_per_day > 0
            assert profile.impatience_median > 0
            assert profile.region in REGION_WEIGHTS
            assert profile.os_version in OS_VERSION_WEIGHTS

    def test_waking_seconds(self):
        profile = UserProfile(
            phone_id="p",
            region="Italy",
            os_version="8.0",
            calls_per_day=3,
            messages_per_day=5,
            app_sessions_per_day=5,
            wake_hour=8.0,
            sleep_hour=23.0,
            night_off_prob=0.2,
            forget_charge_prob=0.02,
            impatience_median=120.0,
            day_reboot_prob=0.01,
            call_duration_median=90.0,
            message_duration_median=30.0,
        )
        assert profile.waking_seconds == 15 * 3600.0

    def test_population_mostly_version_8(self):
        versions = [
            self.make(f"phone-{i:02d}", seed=7).os_version for i in range(100)
        ]
        assert versions.count("8.0") > 30

    def test_both_regions_present(self):
        regions = {self.make(f"phone-{i:02d}", seed=11).region for i in range(60)}
        assert regions == {"Italy", "USA"}
