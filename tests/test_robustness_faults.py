"""The fault-injection harness: plans, injectors, degradation curve.

The acceptance bar from the robustness issue: a disabled plan is
byte-identical to the clean pipeline (pinned in
``test_pipeline_equivalence.py``); mild fault rates keep every headline
figure within a few percent of clean; any intensity terminates with a
structured report, never an unhandled exception; and all of it replays
bit-for-bit from the plan's seed.
"""

import json

import pytest

from repro.analysis.ingest import (
    CORRUPTION_BAD_VALUE,
    CORRUPTION_FIELD_COUNT,
    CORRUPTION_UNKNOWN_TAG,
    Dataset,
    IngestReport,
    classify_malformed,
)
from repro.core.errors import ConfigError
from repro.experiments.config import CampaignConfig
from repro.experiments.summary import HEADLINE_KEYS, headline_figures
from repro.robustness import (
    FaultPlan,
    run_degradation_experiment,
    run_faulty_campaign,
)
from repro.robustness.experiment import drift_percent, run_resilience_probe


class TestFaultPlan:
    def test_round_trips_through_dict(self):
        plan = FaultPlan.harsh(seed=99)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        ) == plan

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seed": 1, "gamma_ray_rate": 0.5})

    @pytest.mark.parametrize("field", FaultPlan.rate_fields())
    def test_rejects_out_of_range_rates(self, field):
        with pytest.raises(ConfigError, match=field):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ConfigError, match=field):
            FaultPlan(**{field: -0.1})

    def test_rejects_negative_magnitudes(self):
        with pytest.raises(ConfigError):
            FaultPlan(clock_skew_max=-1.0)
        with pytest.raises(ConfigError):
            FaultPlan(worker_hang_seconds=-1.0)

    def test_none_preset_is_disabled(self):
        assert not FaultPlan.none().enabled
        assert FaultPlan.mild().enabled
        assert FaultPlan.harsh().enabled

    def test_scaled_multiplies_and_clamps(self):
        plan = FaultPlan.mild()
        doubled = plan.scaled(2.0)
        assert doubled.storage_truncate_rate == pytest.approx(0.02)
        assert doubled.clock_skew_max == pytest.approx(60.0)
        assert doubled.seed == plan.seed  # identity knobs never scale
        assert doubled.worker_hang_seconds == plan.worker_hang_seconds
        clamped = FaultPlan.harsh().scaled(100.0)
        for name in FaultPlan.rate_fields():
            assert 0.0 <= getattr(clamped, name) <= 1.0

    def test_scaled_zero_disables(self):
        assert not FaultPlan.harsh().scaled(0.0).enabled

    def test_scaled_rejects_negative_intensity(self):
        with pytest.raises(ConfigError):
            FaultPlan.mild().scaled(-1.0)

    def test_skew_only_plan_counts_as_enabled(self):
        assert FaultPlan(clock_skew_max=10.0).enabled


class TestInjectorDeterminism:
    def test_same_plan_same_campaign_replays_bit_for_bit(self):
        config = CampaignConfig.tiny(seed=7)
        plan = FaultPlan.mild(seed=42)
        first = run_faulty_campaign(config, plan=plan)
        second = run_faulty_campaign(config, plan=plan)
        assert first.summary.to_dict() == second.summary.to_dict()
        assert first.injected == second.injected
        assert first.transfer == second.transfer
        assert first.ingest == second.ingest

    def test_plan_seed_changes_the_injection(self):
        config = CampaignConfig.tiny(seed=7)
        harsh = FaultPlan.harsh
        first = run_faulty_campaign(config, plan=harsh(seed=1))
        second = run_faulty_campaign(config, plan=harsh(seed=2))
        assert first.injected != second.injected

    def test_injection_is_visible_in_stats(self):
        outcome = run_faulty_campaign(
            CampaignConfig.tiny(seed=7), plan=FaultPlan.harsh()
        )
        injected = outcome.injected
        assert injected["truncated_entries"] + injected["garbled_entries"] > 0
        assert outcome.ingest["quarantined"] > 0
        # Defense-side accounting moved too: retries or dedup fired.
        transfer = outcome.transfer
        assert (
            transfer["retries"]
            + transfer["duplicate_entries_dropped"]
            + transfer["out_of_order_batches"]
        ) > 0


class TestPipelineDoorParity:
    """Both ingest doors agree under faults, quarantine included."""

    @pytest.mark.parametrize("intensity", [0.5, 1.0])
    def test_structured_and_text_doors_agree_under_faults(self, intensity):
        config = CampaignConfig.tiny(seed=7)
        plan = FaultPlan.mild().scaled(intensity)
        structured = run_faulty_campaign(config, plan=plan)
        text = run_faulty_campaign(config, plan=plan, pipeline="text")
        s_dict = structured.summary.to_dict()
        t_dict = text.summary.to_dict()
        s_dict.pop("config"), t_dict.pop("config")
        assert json.dumps(s_dict, sort_keys=True) == json.dumps(
            t_dict, sort_keys=True
        )
        assert structured.ingest == text.ingest


class TestIngestQuarantine:
    def test_classification_covers_the_corruption_classes(self):
        err = ValueError("RUNAPP expects 2 fields, got 1")
        assert classify_malformed("RUNAPP|180", err) == CORRUPTION_FIELD_COUNT
        assert classify_malformed("#UNAPP|1|2", err) == CORRUPTION_UNKNOWN_TAG
        bad = ValueError("PANIC time field 'x' is not a number")
        assert classify_malformed("PANIC|x|KERN-EXEC|3", bad) == (
            CORRUPTION_BAD_VALUE
        )

    def test_malformed_lines_are_quarantined_not_silent(self, quick_campaign):
        lines = quick_campaign.fleet.collector.dataset()
        phone = sorted(lines)[0]
        lines[phone] = lines[phone] + [
            "XYZZY|1|2",          # unknown tag
            "RUNAPP|180",         # field count (truncated-tail shape)
        ]
        dataset = Dataset.from_lines(lines)
        report = dataset.ingest_report
        baseline = quick_campaign.dataset.ingest_report
        assert report.quarantined == baseline.quarantined + 2
        assert report.by_class[CORRUPTION_UNKNOWN_TAG] >= 1
        assert report.by_phone[phone] >= 2
        assert "XYZZY|1|2" in report.samples or len(report.samples) == 10
        json.dumps(report.to_dict())

    def test_clean_report_properties(self):
        report = IngestReport()
        assert report.clean
        report.quarantine("phone-00", "JUNK|1", ValueError("no"))
        assert not report.clean
        assert report.quarantined == 1


class TestDegradationExperiment:
    @pytest.fixture(scope="class")
    def curve(self):
        return run_degradation_experiment(
            CampaignConfig.quick(), intensities=(0.5, 1.0)
        )

    def test_clean_anchor_has_zero_drift(self, curve):
        anchor = curve.points[0]
        assert anchor.intensity == 0.0
        assert anchor.max_drift == 0.0
        assert set(anchor.drift) == set(HEADLINE_KEYS)

    def test_mild_faults_keep_headlines_within_tolerance(self, curve):
        # The issue's acceptance bar: <= 1% fault rates (the mild plan
        # at intensity 1.0) move no headline figure by more than 5%.
        assert curve.worst_drift_at(1.0) <= 5.0
        for point in curve.points:
            assert point.error is None
            assert not point.undefined_drift_keys

    def test_report_is_strict_json(self, curve):
        json.dumps(curve.to_dict(), allow_nan=False, sort_keys=True)

    def test_render_mentions_every_intensity(self, curve):
        text = curve.render()
        for point in curve.points:
            assert f"{point.intensity:g}" in text
        for key in HEADLINE_KEYS:
            assert key in text

    def test_harsh_faults_terminate_with_structured_report(self):
        report = run_degradation_experiment(
            CampaignConfig.tiny(),
            base_plan=FaultPlan.harsh(),
            intensities=(1.0, 2.0),
        )
        assert len(report.points) == 3  # anchor + both intensities
        for point in report.points:
            # Either a full set of figures or a structured error —
            # never an exception out of the experiment.
            assert (point.figures is None) == (point.error is not None)
        json.dumps(report.to_dict(), allow_nan=False)

    def test_headline_figures_shape(self, quick_campaign):
        from repro.experiments.summary import CampaignSummary

        figures = headline_figures(
            CampaignSummary.from_result(quick_campaign)
        )
        assert tuple(figures) == HEADLINE_KEYS
        assert all(isinstance(v, float) for v in figures.values())


class TestDriftPercent:
    def test_basic_and_edge_cases(self):
        assert drift_percent(100.0, 110.0) == pytest.approx(10.0)
        assert drift_percent(100.0, 100.0) == 0.0
        assert drift_percent(0.0, 0.0) == 0.0
        assert drift_percent(0.0, 5.0) is None  # undefined, not folded
        assert drift_percent(100.0, float("inf")) == float("inf")
        assert drift_percent(float("inf"), float("inf")) == 0.0


class TestResilienceProbe:
    def test_probe_completes_and_reports_evidence(self, tmp_path):
        plan = FaultPlan(
            seed=777, worker_crash_rate=0.3, cache_corrupt_rate=0.5
        )
        probe = run_resilience_probe(
            CampaignConfig.tiny(),
            plan,
            seeds=(101, 102),
            workers=1,
            retries=4,
            cache_dir=str(tmp_path),
        )
        assert probe.seeds == [101, 102]
        assert probe.completed + len(
            {f["seed"] for f in probe.failures}
        ) >= len(probe.seeds)
        json.dumps(probe.to_dict())
