"""Tests for the user model and the fleet."""

import pytest

from repro.core.clock import DAY, HOUR
from repro.core.engine import Simulator
from repro.core.rand import RandomStreams
from repro.core.records import ActivityRecord, BootRecord
from repro.phone.device import STATE_OFF, STATE_ON, SmartPhone
from repro.phone.faults import FaultModelConfig
from repro.phone.fleet import Fleet, FleetConfig
from repro.phone.profiles import UserProfile
from repro.phone.user import UserModel


def quiet_profile(**overrides) -> UserProfile:
    """A deterministic-ish profile for focused user-model tests."""
    values = dict(
        phone_id="phone-00",
        region="Italy",
        os_version="8.0",
        calls_per_day=4.0,
        messages_per_day=4.0,
        app_sessions_per_day=4.0,
        wake_hour=8.0,
        sleep_hour=23.0,
        night_off_prob=0.0,
        forget_charge_prob=0.0,
        impatience_median=120.0,
        day_reboot_prob=0.0,
        call_duration_median=90.0,
        message_duration_median=30.0,
    )
    values.update(overrides)
    return UserProfile(**values)


def make_user_rig(profile=None, days=3, seed=5):
    sim = Simulator()
    profile = profile or quiet_profile()
    device = SmartPhone(sim, profile)
    user = UserModel(device, RandomStreams(seed).fork("u"), campaign_end=days * DAY)
    return sim, device, user


class TestUserModel:
    def test_enroll_boots_the_phone(self):
        sim, device, user = make_user_rig()
        user.enroll(9 * HOUR)
        sim.run_until(9 * HOUR + 1)
        assert device.is_on

    def test_activities_happen_during_the_day(self):
        sim, device, user = make_user_rig()
        user.enroll(9 * HOUR)
        sim.run_until(2 * DAY)
        acts = [r for r in device.storage.records() if isinstance(r, ActivityRecord)]
        assert len(acts) > 4  # a few calls/messages over two days

    def test_night_off_user_shuts_down_and_reboots_next_morning(self):
        sim, device, user = make_user_rig(quiet_profile(night_off_prob=1.0))
        user.enroll(9 * HOUR)
        sim.run_until(DAY + 2 * HOUR)  # past bedtime (23:00), before wake
        assert device.state == STATE_OFF
        sim.run_until(DAY + 10 * HOUR)  # past wake (8:00 + jitter)
        assert device.is_on
        boots = [r for r in device.storage.records() if isinstance(r, BootRecord)]
        night = [b for b in boots if b.last_beat_kind == "REBOOT"]
        assert len(night) == 1
        # ~9 hours off (23:00 -> ~08:10)
        assert 7 * HOUR < night[0].off_duration < 12 * HOUR

    def test_always_on_user_stays_on_at_night(self):
        sim, device, user = make_user_rig(quiet_profile(night_off_prob=0.0))
        user.enroll(9 * HOUR)
        sim.run_until(DAY + 2 * HOUR)
        assert device.is_on

    def test_freeze_triggers_battery_pull_and_reboot(self):
        sim, device, user = make_user_rig()
        user.enroll(9 * HOUR)
        sim.run_until(10 * HOUR)
        device.freeze()
        sim.run_until(10 * HOUR + 6 * HOUR)
        assert device.is_on  # pulled and rebooted
        assert user.battery_pulls == 1
        boots = [r for r in device.storage.records() if isinstance(r, BootRecord)]
        assert boots[-1].last_beat_kind == "ALIVE"

    def test_overnight_freeze_noticed_in_the_morning(self):
        sim, device, user = make_user_rig()
        user.enroll(9 * HOUR)
        sim.run_until(DAY + 3 * HOUR)  # 03:00, user asleep, phone on
        device.freeze()
        sim.run_until(DAY + 7 * HOUR)
        assert device.state == "frozen"  # still frozen before wake
        sim.run_until(DAY + 12 * HOUR)
        assert device.is_on

    def test_self_shutdown_rebooted_quickly(self):
        sim, device, user = make_user_rig()
        user.enroll(9 * HOUR)
        sim.run_until(10 * HOUR)
        device.graceful_shutdown("self")
        sim.run_until(10 * HOUR + 30 * 60)
        assert device.is_on
        boots = [r for r in device.storage.records() if isinstance(r, BootRecord)]
        assert boots[-1].off_duration < 30 * 60

    def test_reaction_reboot_has_long_off_time(self):
        sim, device, user = make_user_rig()
        user.enroll(9 * HOUR)
        sim.run_until(10 * HOUR)
        user.react_to_misbehavior()
        assert device.state == STATE_OFF
        sim.run_until(10 * HOUR + HOUR)
        assert device.is_on
        boots = [r for r in device.storage.records() if isinstance(r, BootRecord)]
        assert boots[-1].last_beat_kind == "REBOOT"
        assert boots[-1].off_duration > 360.0  # classified as user shutdown
        assert user.reaction_reboots == 1

    def test_forgotten_charge_leads_to_lowbt(self):
        sim, device, user = make_user_rig(
            quiet_profile(forget_charge_prob=1.0, night_off_prob=0.0)
        )
        device.battery.set_level(0.0, 0.25)  # low enough to die overnight
        user.enroll(9 * HOUR)
        sim.run_until(2 * DAY)
        boots = [r for r in device.storage.records() if isinstance(r, BootRecord)]
        assert any(b.last_beat_kind == "LOWBT" for b in boots)

    def test_no_activity_after_campaign_end(self):
        sim, device, user = make_user_rig(days=1)
        user.enroll(9 * HOUR)
        sim.run_until(DAY)
        count_at_end = device.storage.line_count
        sim.run_until(3 * DAY)
        # nothing new was planned past the end
        assert device.storage.line_count <= count_at_end + 2


class TestFleet:
    def test_small_campaign_produces_logs_for_every_phone(self):
        config = FleetConfig(
            phone_count=3,
            duration=20 * DAY,
            enroll_fraction_min=0.0,
            enroll_fraction_max=0.2,
        )
        fleet = Fleet(config, seed=99)
        fleet.run()
        assert len(fleet.collector.phone_ids()) == 3
        for phone_id in fleet.collector.phone_ids():
            assert len(fleet.collector.lines_for(phone_id)) > 10

    def test_deterministic_given_seed(self):
        def run(seed):
            config = FleetConfig(
                phone_count=2,
                duration=10 * DAY,
                enroll_fraction_min=0.0,
                enroll_fraction_max=0.1,
            )
            fleet = Fleet(config, seed=seed)
            fleet.run()
            return fleet.collector.dataset()

        assert run(5) == run(5)

    def test_different_seed_differs(self):
        def run(seed):
            config = FleetConfig(
                phone_count=2,
                duration=10 * DAY,
                enroll_fraction_min=0.0,
                enroll_fraction_max=0.1,
            )
            fleet = Fleet(config, seed=seed)
            fleet.run()
            return fleet.collector.dataset()

        assert run(5) != run(6)

    def test_build_twice_rejected(self):
        fleet = Fleet(FleetConfig(phone_count=1, duration=DAY))
        fleet.build()
        with pytest.raises(ValueError):
            fleet.build()

    def test_run_twice_rejected(self):
        fleet = Fleet(
            FleetConfig(
                phone_count=1,
                duration=DAY,
                enroll_fraction_min=0.0,
                enroll_fraction_max=0.1,
            )
        )
        fleet.run()
        with pytest.raises(ValueError):
            fleet.run()

    def test_ground_truth_keys(self):
        fleet = Fleet(
            FleetConfig(
                phone_count=2,
                duration=5 * DAY,
                enroll_fraction_min=0.0,
                enroll_fraction_max=0.1,
            ),
            seed=1,
        )
        fleet.run()
        truth = fleet.ground_truth()
        for key in (
            "freezes",
            "self_shutdowns",
            "user_shutdowns",
            "lowbt_shutdowns",
            "panics",
            "boots",
            "observed_hours",
        ):
            assert key in truth

    def test_enrollment_staggered_within_bounds(self):
        config = FleetConfig(
            phone_count=10,
            duration=100 * DAY,
            enroll_fraction_min=0.2,
            enroll_fraction_max=0.6,
        )
        fleet = Fleet(config, seed=3)
        fleet.build()
        for instance in fleet.phones:
            fraction = instance.enrolled_at / config.duration
            assert 0.2 <= fraction <= 0.6
