"""Tests for the discrete-event engine."""

import pytest

from repro.core.engine import Simulator
from repro.core.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule_after(5, out.append, "late")
        sim.schedule_after(1, out.append, "early")
        sim.run()
        assert out == ["early", "late"]

    def test_same_time_fires_in_scheduling_order(self):
        sim = Simulator()
        out = []
        for i in range(10):
            sim.schedule_at(7.0, out.append, i)
        sim.run()
        assert out == list(range(10))

    def test_priority_breaks_time_ties(self):
        sim = Simulator()
        out = []
        sim.schedule_at(1.0, out.append, "low", priority=5)
        sim.schedule_at(1.0, out.append, "high", priority=-5)
        sim.run()
        assert out == ["high", "low"]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator(start=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda: None)

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule_after(3.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [3.5]

    def test_events_scheduled_from_handlers(self):
        sim = Simulator()
        out = []

        def first():
            out.append("first")
            sim.schedule_after(1.0, lambda: out.append("second"))

        sim.schedule_after(1.0, first)
        sim.run()
        assert out == ["first", "second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        out = []
        handle = sim.schedule_after(1.0, out.append, "x")
        handle.cancel()
        sim.run()
        assert out == []

    def test_cancel_twice_is_noop(self):
        sim = Simulator()
        handle = sim.schedule_after(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule_after(1.0, lambda: None)
        drop = sim.schedule_after(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_count() == 1
        del keep


class TestRunUntil:
    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        out = []
        sim.schedule_at(5.0, out.append, "in")
        sim.schedule_at(15.0, out.append, "out")
        sim.run_until(10.0)
        assert out == ["in"]
        assert sim.now == 10.0

    def test_event_at_boundary_fires(self):
        sim = Simulator()
        out = []
        sim.schedule_at(10.0, out.append, "edge")
        sim.run_until(10.0)
        assert out == ["edge"]

    def test_remaining_events_fire_on_next_run(self):
        sim = Simulator()
        out = []
        sim.schedule_at(15.0, out.append, "later")
        sim.run_until(10.0)
        sim.run_until(20.0)
        assert out == ["later"]

    def test_run_not_reentrant(self):
        sim = Simulator()

        def reenter():
            sim.run_until(100.0)

        sim.schedule_after(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()


class TestStepAndIntrospection:
    def test_step_fires_one_event(self):
        sim = Simulator()
        out = []
        sim.schedule_after(1.0, out.append, 1)
        sim.schedule_after(2.0, out.append, 2)
        assert sim.step() is True
        assert out == [1]

    def test_step_on_empty_returns_false(self):
        assert Simulator().step() is False

    def test_peek_time(self):
        sim = Simulator()
        sim.schedule_after(4.0, lambda: None)
        assert sim.peek_time() == 4.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule_after(1.0, lambda: None)
        sim.schedule_after(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_events_fired_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule_after(1.0, lambda: None)
        sim.run()
        assert sim.events_fired == 5

    def test_repr(self):
        sim = Simulator()
        assert "pending=0" in repr(sim)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []
            for i in range(50):
                sim.schedule_at(float(i % 7), trace.append, i)
            sim.run()
            return trace

        assert run_once() == run_once()


class TestLazyCancellation:
    def test_mass_cancellation_compacts_heap(self):
        sim = Simulator()
        handles = [sim.schedule_after(float(i + 1), lambda: None) for i in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        # Compaction keeps dead entries from dominating: the heap can
        # never hold more than ~2x the live events.
        assert len(sim._heap) < 100
        assert sim.pending_count() == 50

    def test_small_heaps_are_not_compacted(self):
        sim = Simulator()
        handles = [sim.schedule_after(float(i + 1), lambda: None) for i in range(10)]
        for handle in handles:
            handle.cancel()
        assert len(sim._heap) == 10
        assert sim.pending_count() == 0
        sim.run()
        assert sim.events_fired == 0

    def test_order_preserved_after_compaction(self):
        sim = Simulator()
        out = []
        keep = [sim.schedule_at(float(t), out.append, t) for t in (5, 3, 8, 1)]
        drop = [sim.schedule_after(100.0 + i, lambda: None) for i in range(100)]
        for handle in drop:
            handle.cancel()
        del keep
        sim.run()
        assert out == [1, 3, 5, 8]

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        handle = sim.schedule_after(1.0, lambda: None)
        sim.run()
        handle.cancel()  # stale handle: must not corrupt the counter
        assert sim.pending_count() == 0
        sim.schedule_after(1.0, lambda: None)
        assert sim.pending_count() == 1

    def test_pending_count_tracks_mixed_traffic(self):
        sim = Simulator()
        handles = [sim.schedule_after(float(i + 1), lambda: None) for i in range(80)]
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending_count() == 40
        sim.step()
        assert sim.pending_count() == 39
