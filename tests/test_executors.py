"""The pluggable executor layer: backends, stealing, and crash healing.

:mod:`repro.experiments.executors` promises that *how* campaigns run —
serial loop, static process pool, work-stealing queue workers — never
changes *what* they produce.  These tests pin backend resolution, the
bit-identity of every backend against the serial oracle, dispatch-time
work stealing, failure identity (which phone range was in flight), and
the coordinator's healing when a worker process is killed outright.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core.clock import MONTH
from repro.experiments.config import CampaignConfig
from repro.experiments.executors import (
    EXECUTOR_POOL,
    EXECUTOR_SERIAL,
    EXECUTOR_WORKQUEUE,
    EXECUTORS,
    CampaignExecutionError,
    ExecutorStats,
    PoolExecutor,
    SerialExecutor,
    WorkQueueExecutor,
    get_executor,
)
from repro.experiments.runner import run_campaigns
from repro.experiments.shard import (
    ShardTask,
    merge_shard_files,
    plan_shards,
    shard_config_size,
    split_shard_config,
)
from repro.experiments.summary import CampaignSummary
from repro.observability.telemetry import (
    TELEMETRY_METRICS,
    TELEMETRY_OFF,
    Telemetry,
)
from repro.phone.fleet import FleetConfig

SEEDS = [7, 8, 9]


def tiny_config(seed: int) -> CampaignConfig:
    return CampaignConfig(
        fleet=FleetConfig(phone_count=3, duration=1.0 * MONTH), seed=seed
    )


def small_campaign(seed: int = 1234, phones: int = 12) -> CampaignConfig:
    fleet = FleetConfig(
        phone_count=phones,
        duration=0.5 * MONTH,
        enroll_fraction_min=0.0,
        enroll_fraction_max=0.1,
    )
    return CampaignConfig(fleet=fleet, seed=seed)


def canonical(summary: CampaignSummary) -> str:
    return json.dumps(summary.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def serial_summaries():
    return run_campaigns([tiny_config(seed) for seed in SEEDS], workers=1)


# -- backend resolution ---------------------------------------------------------


def test_get_executor_resolution():
    assert isinstance(get_executor(None, 1), SerialExecutor)
    assert isinstance(get_executor(None, 4), PoolExecutor)
    assert isinstance(get_executor(EXECUTOR_SERIAL, 4), SerialExecutor)
    # One worker cannot fan out: every name degrades to serial.
    assert isinstance(get_executor(EXECUTOR_POOL, 1), SerialExecutor)
    pool = get_executor(EXECUTOR_POOL, 3)
    assert isinstance(pool, PoolExecutor) and pool.workers == 3
    queue = get_executor(EXECUTOR_WORKQUEUE, 2)
    assert isinstance(queue, WorkQueueExecutor) and queue.workers == 2
    # Instances pass through untouched (caller-configured backends).
    custom = WorkQueueExecutor(2, min_split_phones=4)
    assert get_executor(custom, 8) is custom
    with pytest.raises(ValueError, match="unknown executor"):
        get_executor("threads", 4)
    with pytest.raises(ValueError, match="workers"):
        WorkQueueExecutor(0)


def test_executor_stats_shape_and_delta_sampling():
    stats = ExecutorStats(backend=EXECUTOR_WORKQUEUE)
    stats.steals = 3
    stats.task_retries = 2
    snapshot = stats.to_dict()
    for key in (
        "executor.steals_total",
        "executor.task_retries_total",
        "executor.resumed_shards_total",
        "executor.worker_restarts_total",
        "executor.watchdog_fires_total",
    ):
        assert key in snapshot
    tel = Telemetry(TELEMETRY_METRICS)
    stats.sample(tel)
    stats.sample(tel)  # repeated sampling must not double-count
    totals = tel.registry.counter_totals()
    assert totals["executor.steals_total"] == 3.0
    assert totals["executor.task_retries_total"] == 2.0
    stats.resumed_shards = 5
    stats.sample(tel)
    assert (
        tel.registry.counter_totals()["executor.resumed_shards_total"] == 5.0
    )
    # Telemetry off: sampling is a no-op, the plain ints still serve.
    stats_off = ExecutorStats()
    stats_off.steals = 1
    stats_off.sample(Telemetry(TELEMETRY_OFF))


# -- bit-identity across backends -----------------------------------------------


def test_workqueue_runner_matches_serial(serial_summaries):
    configs = [tiny_config(seed) for seed in SEEDS]
    summaries = run_campaigns(
        configs, workers=2, executor=EXECUTOR_WORKQUEUE
    )
    assert [canonical(s) for s in summaries] == [
        canonical(s) for s in serial_summaries
    ]


def test_executor_instance_accepted_by_runner(serial_summaries):
    configs = [tiny_config(seed) for seed in SEEDS]
    summaries = run_campaigns(
        configs, workers=4, executor=SerialExecutor()
    )
    assert [canonical(s) for s in summaries] == [
        canonical(s) for s in serial_summaries
    ]


# -- splitting / stealing -------------------------------------------------------


def test_split_shard_config_halves_and_bottoms_out():
    config = small_campaign(phones=9)
    [whole] = plan_shards(config, 1)
    assert shard_config_size(whole) == 9
    left, right = split_shard_config(whole)
    assert left.fleet.phone_range == (0, 4)
    assert right.fleet.phone_range == (4, 9)
    assert shard_config_size(left) + shard_config_size(right) == 9
    single = left
    while shard_config_size(single) > 1:
        single, _ = split_shard_config(single)
    assert split_shard_config(single) is None


def test_workqueue_steals_from_skewed_plan(tmp_path):
    """A deliberately long-tailed plan gets split at dispatch time, the
    executed tiling is finer than the planned one, and the merged
    summary still matches the monolithic run bit for bit."""
    config = small_campaign(phones=12)
    from repro.experiments.campaign import run_campaign

    mono = CampaignSummary.from_result(run_campaign(config))
    plan = plan_shards(config, 2, weights=[11, 1])
    backend = WorkQueueExecutor(2, min_split_phones=2)
    completed = backend.execute_shards(
        [(c.fleet.resolved_range(), c) for c in plan],
        ShardTask(),
        str(tmp_path),
        tel=Telemetry(TELEMETRY_OFF),
        splitter=split_shard_config,
        size_fn=shard_config_size,
    )
    assert backend.stats.steals >= 1
    assert len(completed) > len(plan)
    merged = merge_shard_files(
        [
            type(
                "C", (), {"phone_range": rng, "path": _commit_path(tmp_path, cfg)}
            )()
            for rng, cfg in completed
        ],
        config,
    )
    assert json.dumps(merged.summary.to_dict(), sort_keys=True) == canonical(
        mono
    )
    assert merged.events_fired > 0


def _commit_path(tmp_path, config):
    from repro.experiments.cache import CampaignCache

    return CampaignCache(str(tmp_path)).path_for(config)


# -- failure identity -----------------------------------------------------------


class ExplodeRange(ShardTask):
    """Fails permanently for one phone range, succeeds elsewhere."""

    def __init__(self, victim_start: int) -> None:
        super().__init__()
        self.victim_start = victim_start

    def __call__(self, config):
        if config.fleet.resolved_range()[0] == self.victim_start:
            raise RuntimeError("shard detonated")
        return super().__call__(config)


def test_workqueue_failure_carries_phone_range(tmp_path):
    config = small_campaign(phones=12)
    plan = plan_shards(config, 3)
    victim = plan[1].fleet.phone_range
    backend = WorkQueueExecutor(2, steal=False)
    with pytest.raises(CampaignExecutionError) as excinfo:
        backend.execute_shards(
            [(c.fleet.resolved_range(), c) for c in plan],
            ExplodeRange(victim[0]),
            str(tmp_path),
            tel=Telemetry(TELEMETRY_OFF),
            retries=1,
        )
    err = excinfo.value
    assert err.phone_range == victim
    assert f"phones [{victim[0]}, {victim[1]})" in str(err)
    assert "shard detonated" in str(err)
    assert backend.stats.task_retries >= 1


# -- worker-death healing -------------------------------------------------------


class MurderousTask(ShardTask):
    """SIGKILLs its own worker process once, for one phone range.

    The flag file makes the murder one-shot: the re-dispatched attempt
    (in the respawned worker) finds the flag and completes normally.
    Never fires in the parent process, so a serial fallback cannot
    take the test runner down.
    """

    def __init__(self, victim_start: int, flag_path: str, parent_pid: int):
        super().__init__()
        self.victim_start = victim_start
        self.flag_path = flag_path
        self.parent_pid = parent_pid

    def __call__(self, config):
        if (
            config.fleet.resolved_range()[0] == self.victim_start
            and os.getpid() != self.parent_pid
            and not os.path.exists(self.flag_path)
        ):
            with open(self.flag_path, "w", encoding="utf-8") as handle:
                handle.write("murdered once\n")
            os.kill(os.getpid(), signal.SIGKILL)
        return super().__call__(config)


def _processes_work() -> bool:
    try:
        proc = multiprocessing.get_context().Process(target=int)
        proc.start()
        proc.join(5)
        return proc.exitcode == 0
    except Exception:
        return False


def test_workqueue_heals_killed_worker(tmp_path):
    """kill -9 of a worker mid-shard: the coordinator detects the death,
    re-dispatches the in-flight shard, respawns a worker, and the run
    completes bit-identically — with the healing visible in stats."""
    if not _processes_work():
        pytest.skip("multiprocessing unavailable in this environment")
    config = small_campaign(phones=12)
    from repro.experiments.campaign import run_campaign

    mono = CampaignSummary.from_result(run_campaign(config))
    plan = plan_shards(config, 4)
    victim = plan[2].fleet.phone_range
    flag = str(tmp_path / "murdered.flag")
    # One worker: when it is killed there are no survivors, so healing
    # *must* go through a respawn (with 2+ workers a survivor may soak
    # up the requeued shard and no restart is needed).
    backend = WorkQueueExecutor(1, steal=False)
    completed = backend.execute_shards(
        [(c.fleet.resolved_range(), c) for c in plan],
        MurderousTask(victim[0], flag, os.getpid()),
        str(tmp_path / "commits"),
        tel=Telemetry(TELEMETRY_OFF),
        retries=0,
    )
    assert os.path.exists(flag), "the murder never happened"
    assert backend.stats.worker_restarts >= 1
    assert backend.stats.task_retries >= 1
    assert sorted(rng for rng, _cfg in completed) == sorted(
        c.fleet.phone_range for c in plan
    )
    from repro.experiments.cache import CampaignCache
    from repro.experiments.shard import CommittedShard

    commits = CampaignCache(str(tmp_path / "commits"))
    merged = merge_shard_files(
        [
            CommittedShard(rng, commits.path_for(cfg))
            for rng, cfg in completed
        ],
        config,
    )
    assert json.dumps(merged.summary.to_dict(), sort_keys=True) == canonical(
        mono
    )


class HangOnce(ShardTask):
    """Sleeps forever for one range until the flag file exists."""

    def __init__(self, victim_start: int, flag_path: str, parent_pid: int):
        super().__init__()
        self.victim_start = victim_start
        self.flag_path = flag_path
        self.parent_pid = parent_pid

    def __call__(self, config):
        if (
            config.fleet.resolved_range()[0] == self.victim_start
            and os.getpid() != self.parent_pid
            and not os.path.exists(self.flag_path)
        ):
            with open(self.flag_path, "w", encoding="utf-8") as handle:
                handle.write("hung once\n")
            time.sleep(600)
        return super().__call__(config)


def test_workqueue_watchdog_reclaims_hung_worker(tmp_path):
    if not _processes_work():
        pytest.skip("multiprocessing unavailable in this environment")
    config = small_campaign(phones=8)
    plan = plan_shards(config, 2)
    victim = plan[1].fleet.phone_range
    flag = str(tmp_path / "hung.flag")
    backend = WorkQueueExecutor(2, steal=False)
    completed = backend.execute_shards(
        [(c.fleet.resolved_range(), c) for c in plan],
        HangOnce(victim[0], flag, os.getpid()),
        str(tmp_path / "commits"),
        tel=Telemetry(TELEMETRY_OFF),
        retries=1,
        timeout=2.0,
    )
    assert backend.stats.watchdog_fires >= 1
    assert sorted(rng for rng, _cfg in completed) == sorted(
        c.fleet.phone_range for c in plan
    )
