"""Tests for the log record types."""

import pytest

from repro.core.errors import LogFormatError
from repro.core.records import (
    ActivityRecord,
    BootRecord,
    EnrollRecord,
    PanicRecord,
    PowerRecord,
    RECORD_TAGS,
    RunningAppsRecord,
    UserReportRecord,
    record_from_fields,
)


class TestEnrollRecord:
    def test_roundtrip(self):
        record = EnrollRecord(12.5, "phone-01", "8.0", "Italy")
        assert EnrollRecord.from_fields(record.to_fields()) == record

    def test_wrong_field_count(self):
        with pytest.raises(LogFormatError):
            EnrollRecord.from_fields(["1.0", "x"])

    def test_bad_float(self):
        with pytest.raises(LogFormatError):
            EnrollRecord.from_fields(["abc", "p", "8.0", "Italy"])


class TestBootRecord:
    def test_roundtrip(self):
        record = BootRecord(100.0, "REBOOT", 20.0)
        parsed = BootRecord.from_fields(record.to_fields())
        assert parsed == record

    def test_off_duration(self):
        assert BootRecord(100.0, "REBOOT", 20.0).off_duration == 80.0

    def test_unknown_beat_kind_rejected(self):
        with pytest.raises(LogFormatError):
            BootRecord(1.0, "WEIRD", 0.0)

    def test_all_beat_kinds_accepted(self):
        for kind in ("ALIVE", "REBOOT", "MAOFF", "LOWBT", "NONE"):
            BootRecord(1.0, kind, 0.0)

    def test_wrong_field_count(self):
        with pytest.raises(LogFormatError):
            BootRecord.from_fields(["1.0"])


class TestPanicRecord:
    def test_roundtrip(self):
        record = PanicRecord(5.0, "KERN-EXEC", 3, "Camera")
        assert PanicRecord.from_fields(record.to_fields()) == record

    def test_bad_type_field(self):
        with pytest.raises(LogFormatError):
            PanicRecord.from_fields(["1.0", "KERN-EXEC", "three", "Camera"])

    def test_wrong_field_count(self):
        with pytest.raises(LogFormatError):
            PanicRecord.from_fields(["1.0", "KERN-EXEC", "3"])


class TestActivityRecord:
    def test_roundtrip(self):
        record = ActivityRecord(9.0, "voice_call", "start")
        assert ActivityRecord.from_fields(record.to_fields()) == record

    def test_unknown_kind_rejected(self):
        with pytest.raises(LogFormatError):
            ActivityRecord(1.0, "gaming", "start")

    def test_unknown_phase_rejected(self):
        with pytest.raises(LogFormatError):
            ActivityRecord(1.0, "message", "middle")


class TestRunningAppsRecord:
    def test_roundtrip(self):
        record = RunningAppsRecord(4.0, ("Messages", "Clock"))
        assert RunningAppsRecord.from_fields(record.to_fields()) == record

    def test_empty_set_roundtrip(self):
        record = RunningAppsRecord(4.0, ())
        assert RunningAppsRecord.from_fields(record.to_fields()).apps == ()

    def test_single_app(self):
        record = RunningAppsRecord(4.0, ("Log",))
        assert RunningAppsRecord.from_fields(record.to_fields()).apps == ("Log",)


class TestPowerRecord:
    def test_roundtrip(self):
        record = PowerRecord(8.0, 0.5, "charging")
        parsed = PowerRecord.from_fields(record.to_fields())
        assert parsed.state == "charging"
        assert parsed.level == pytest.approx(0.5)

    def test_unknown_state_rejected(self):
        with pytest.raises(LogFormatError):
            PowerRecord(1.0, 0.5, "exploding")


class TestUserReportRecord:
    def test_roundtrip(self):
        record = UserReportRecord(7.0, "output_failure")
        assert UserReportRecord.from_fields(record.to_fields()) == record

    def test_all_kinds_accepted(self):
        for kind in ("output_failure", "input_failure", "unstable_behavior"):
            UserReportRecord(1.0, kind)

    def test_unknown_kind_rejected(self):
        with pytest.raises(LogFormatError):
            UserReportRecord(1.0, "boredom")

    def test_wrong_field_count(self):
        with pytest.raises(LogFormatError):
            UserReportRecord.from_fields(["1.0"])


class TestDispatch:
    def test_dispatch_every_tag(self):
        samples = {
            "ENROLL": EnrollRecord(1.0, "p", "8.0", "Italy"),
            "BOOT": BootRecord(1.0, "NONE", 0.0),
            "PANIC": PanicRecord(1.0, "USER", 11, "Messages"),
            "ACT": ActivityRecord(1.0, "message", "end"),
            "RUNAPP": RunningAppsRecord(1.0, ("Clock",)),
            "POWER": PowerRecord(1.0, 1.0, "discharging"),
            "UREPORT": UserReportRecord(1.0, "output_failure"),
        }
        assert set(samples) == set(RECORD_TAGS)
        for tag, record in samples.items():
            rebuilt = record_from_fields(tag, record.to_fields())
            assert type(rebuilt) is type(record)

    def test_unknown_tag_rejected(self):
        with pytest.raises(LogFormatError):
            record_from_fields("NOPE", ["1.0"])
