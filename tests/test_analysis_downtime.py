"""Tests for downtime/availability accounting."""

import pytest

from repro.analysis.downtime import compute_downtime
from repro.core.clock import HOUR, MINUTE
from repro.core.records import BootRecord
from tests.helpers import dataset_from_records


def boot(time, kind, beat_time):
    return BootRecord(time, kind, beat_time)


class TestOutageReconstruction:
    def test_freeze_outage_spans_alive_to_boot(self):
        records = [
            boot(0.0, "NONE", 0.0),
            boot(2 * HOUR, "ALIVE", HOUR),  # one hour dark
        ]
        dataset = dataset_from_records({"p": records}, end_time=100 * HOUR)
        stats = compute_downtime(dataset)
        assert stats.freeze.count == 1
        assert stats.freeze.total_seconds == pytest.approx(HOUR)
        assert stats.freeze.mttr_seconds == pytest.approx(HOUR)

    def test_self_shutdown_outage_is_reboot_duration(self):
        records = [
            boot(0.0, "NONE", 0.0),
            boot(HOUR + 80, "REBOOT", HOUR),
        ]
        dataset = dataset_from_records({"p": records}, end_time=100 * HOUR)
        stats = compute_downtime(dataset)
        assert stats.self_shutdown.count == 1
        assert stats.self_shutdown.total_seconds == pytest.approx(80.0)

    def test_user_shutdowns_do_not_count(self):
        records = [
            boot(0.0, "NONE", 0.0),
            boot(9 * HOUR, "REBOOT", HOUR),  # 8 h night-off: deliberate
        ]
        dataset = dataset_from_records({"p": records}, end_time=100 * HOUR)
        stats = compute_downtime(dataset)
        assert stats.self_shutdown.count == 0
        assert stats.total_downtime_hours == 0.0
        assert stats.availability == 1.0

    def test_lowbt_and_maoff_do_not_count(self):
        records = [
            boot(0.0, "NONE", 0.0),
            boot(2 * HOUR, "LOWBT", HOUR),
            boot(4 * HOUR, "MAOFF", 3 * HOUR),
        ]
        dataset = dataset_from_records({"p": records}, end_time=100 * HOUR)
        stats = compute_downtime(dataset)
        assert stats.total_downtime_hours == 0.0

    def test_percentiles(self):
        records = [boot(0.0, "NONE", 0.0)]
        for i, dark in enumerate((60.0, 120.0, 180.0, 240.0, 3000.0)):
            start = (i + 1) * 10 * HOUR
            records.append(boot(start + dark, "ALIVE", start))
        dataset = dataset_from_records({"p": records}, end_time=1000 * HOUR)
        stats = compute_downtime(dataset)
        assert stats.freeze.median_seconds == 180.0
        assert stats.freeze.p90_seconds == 3000.0

    def test_availability_accounting(self):
        records = [
            boot(0.0, "NONE", 0.0),
            boot(11 * HOUR, "ALIVE", 10 * HOUR),  # 1 h outage in 100 h
        ]
        dataset = dataset_from_records({"p": records}, end_time=100 * HOUR)
        stats = compute_downtime(dataset)
        assert stats.availability == pytest.approx(0.99)

    def test_downtime_minutes_per_month(self):
        records = [
            boot(0.0, "NONE", 0.0),
            boot(10 * HOUR + 30 * MINUTE, "ALIVE", 10 * HOUR),
        ]
        dataset = dataset_from_records(
            {"p": records}, end_time=30.44 * 24 * HOUR
        )
        stats = compute_downtime(dataset)
        assert stats.downtime_minutes_per_month == pytest.approx(30.0, rel=0.01)

    def test_empty_dataset(self):
        dataset = dataset_from_records(
            {"p": [boot(0.0, "NONE", 0.0)]}, end_time=HOUR
        )
        stats = compute_downtime(dataset)
        assert stats.freeze.count == 0
        assert stats.availability == 1.0
        assert stats.freeze.mttr_seconds == 0.0


class TestOnRealCampaign:
    def test_freeze_outages_cost_more_than_self_shutdowns(self, paper_campaign):
        """Self-shutdowns auto-recover in ~80 s; freezes wait for a
        human — the §4 severity ordering, quantified in minutes."""
        stats = compute_downtime(
            paper_campaign.dataset, paper_campaign.report.study
        )
        assert stats.freeze.mttr_seconds > 5 * stats.self_shutdown.mttr_seconds
        assert stats.self_shutdown.median_seconds < 2 * MINUTE

    def test_availability_in_everyday_band(self, paper_campaign):
        """User-perceived availability lands in the 'everyday
        dependability' band: clearly below carrier-grade five nines,
        clearly above unusable."""
        stats = compute_downtime(
            paper_campaign.dataset, paper_campaign.report.study
        )
        assert 0.98 < stats.availability < 0.99995
        assert stats.downtime_minutes_per_month > 10.0

    def test_overnight_freezes_stretch_the_tail(self, paper_campaign):
        stats = compute_downtime(
            paper_campaign.dataset, paper_campaign.report.study
        )
        assert stats.freeze.p90_seconds > 5 * stats.freeze.median_seconds
