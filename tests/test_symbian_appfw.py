"""Tests for the mini application framework panics."""

import pytest

from repro.symbian.appfw import (
    AudioClient,
    Edwin,
    ListBox,
    ListBoxView,
    MsgsClient,
    PhoneApp,
)
from repro.symbian.descriptors import TDes16
from repro.symbian.errors import KERR_NONE, PanicRequest
from repro.symbian.panics import (
    EIKCOCTL_70,
    EIKON_LISTBOX_3,
    EIKON_LISTBOX_5,
    MMF_AUDIO_CLIENT_4,
    MSGS_CLIENT_3,
    PHONE_APP_2,
)


class TestListBox:
    def test_normal_draw(self):
        box = ListBox()
        box.set_view(ListBoxView(height=2))
        box.set_items(["a", "b", "c"])
        assert box.draw() == ["a", "b"]

    def test_draw_scrolls_to_current(self):
        box = ListBox()
        box.set_view(ListBoxView(height=2))
        box.set_items(["a", "b", "c", "d"])
        box.set_current_item_index(2)
        assert box.draw() == ["c", "d"]

    def test_draw_without_view_panics_3(self):
        box = ListBox()
        box.set_items(["a"])
        with pytest.raises(PanicRequest) as exc:
            box.draw()
        assert exc.value.panic_id == EIKON_LISTBOX_3

    def test_invalid_index_panics_5(self):
        box = ListBox()
        box.set_view(ListBoxView())
        box.set_items(["a", "b"])
        with pytest.raises(PanicRequest) as exc:
            box.set_current_item_index(2)
        assert exc.value.panic_id == EIKON_LISTBOX_5

    def test_negative_index_panics_5(self):
        box = ListBox()
        box.set_items(["a"])
        with pytest.raises(PanicRequest):
            box.set_current_item_index(-1)

    def test_set_items_resets_index(self):
        box = ListBox()
        box.set_items(["a", "b"])
        box.set_current_item_index(1)
        box.set_items(["x"])
        assert box.current_item_index() == 0

    def test_empty_items_index_minus_one(self):
        box = ListBox()
        box.set_items([])
        assert box.current_item_index() == -1

    def test_view_height_validated(self):
        with pytest.raises(ValueError):
            ListBoxView(height=0)


class TestEdwin:
    def test_inline_edit_lifecycle(self):
        edwin = Edwin()
        edwin.text.copy("hello ")
        edwin.begin_inline_edit()
        edwin.update_inline_text("wor")
        edwin.update_inline_text("world")
        edwin.commit_inline_edit()
        assert edwin.text.as_str() == "hello world"
        assert not edwin.inline_editing

    def test_cancel_removes_inline_text(self):
        edwin = Edwin()
        edwin.text.copy("hello")
        edwin.begin_inline_edit()
        edwin.update_inline_text(" there")
        edwin.cancel_inline_edit()
        assert edwin.text.as_str() == "hello"

    def test_double_begin_panics_70(self):
        edwin = Edwin()
        edwin.begin_inline_edit()
        with pytest.raises(PanicRequest) as exc:
            edwin.begin_inline_edit()
        assert exc.value.panic_id == EIKCOCTL_70

    def test_update_without_begin_panics_70(self):
        with pytest.raises(PanicRequest) as exc:
            Edwin().update_inline_text("x")
        assert exc.value.panic_id == EIKCOCTL_70

    def test_commit_without_begin_panics_70(self):
        with pytest.raises(PanicRequest):
            Edwin().commit_inline_edit()

    def test_cancel_without_begin_panics_70(self):
        with pytest.raises(PanicRequest):
            Edwin().cancel_inline_edit()

    def test_corrupt_state_detected_as_70(self):
        edwin = Edwin()
        edwin.text.copy("short")
        edwin.begin_inline_edit()
        edwin.corrupt_inline_state()
        with pytest.raises(PanicRequest) as exc:
            edwin.update_inline_text("x")
        assert exc.value.panic_id == EIKCOCTL_70


class TestAudioClient:
    def test_volume_in_range(self):
        audio = AudioClient()
        audio.set_volume(9)
        assert audio.volume == 9

    def test_volume_ten_panics_4(self):
        with pytest.raises(PanicRequest) as exc:
            AudioClient().set_volume(10)
        assert exc.value.panic_id == MMF_AUDIO_CLIENT_4

    def test_volume_above_ten_panics(self):
        with pytest.raises(PanicRequest):
            AudioClient().set_volume(42)

    def test_negative_clamped_to_zero(self):
        audio = AudioClient()
        audio.set_volume(-3)
        assert audio.volume == 0

    def test_play_stop(self):
        audio = AudioClient()
        audio.play()
        assert audio.playing
        audio.stop()
        assert not audio.playing


class TestMsgsClient:
    def test_store_and_fetch(self):
        client = MsgsClient()
        index = client.store_message("hello")
        target = TDes16(32)
        assert client.fetch_message(index, target) == KERR_NONE
        assert target.as_str() == "hello"

    def test_fetch_unknown_returns_not_found(self):
        assert MsgsClient().fetch_message(0, TDes16(8)) == -1

    def test_writeback_overflow_panics_msgs_3(self):
        client = MsgsClient()
        index = client.store_message("a rather long message body")
        with pytest.raises(PanicRequest) as exc:
            client.fetch_message(index, TDes16(4))
        assert exc.value.panic_id == MSGS_CLIENT_3

    def test_message_count(self):
        client = MsgsClient()
        client.store_message("a")
        client.store_message("b")
        assert client.message_count == 2


class TestPhoneApp:
    def test_outgoing_call_lifecycle(self):
        phone = PhoneApp()
        phone.dial()
        phone.answer()
        phone.hang_up()
        assert phone.state == "idle"
        assert phone.calls_completed == 1

    def test_incoming_call_lifecycle(self):
        phone = PhoneApp()
        phone.incoming()
        phone.answer()
        phone.hang_up()
        assert phone.calls_completed == 1

    def test_abandoned_dial(self):
        phone = PhoneApp()
        phone.dial()
        phone.transition("idle")
        assert phone.calls_completed == 0

    def test_illegal_transition_panics_phone_app_2(self):
        phone = PhoneApp()
        with pytest.raises(PanicRequest) as exc:
            phone.transition("connected")  # cannot connect from idle
        assert exc.value.panic_id == PHONE_APP_2

    def test_dial_while_connected_panics(self):
        phone = PhoneApp()
        phone.dial()
        phone.answer()
        with pytest.raises(PanicRequest):
            phone.dial()

    def test_unknown_state_target_panics(self):
        with pytest.raises(PanicRequest):
            PhoneApp().transition("teleporting")

    def test_reset_reidles(self):
        phone = PhoneApp()
        phone.dial()
        phone.answer()
        phone.reset()
        assert phone.state == "idle"
        phone.dial()  # legal again
