"""Tests for the cleanup stack, TRAP/Leave, two-phase construction."""

import pytest

from repro.symbian.cleanup import CTrapCleanup, two_phase_new
from repro.symbian.errors import KERR_GENERAL, KERR_NO_MEMORY, Leave, PanicRequest
from repro.symbian.panics import E32USER_CBASE_69


class Tracked:
    """Object with a destructor flag, for unwind assertions."""

    def __init__(self):
        self.destroyed = False

    def destruct(self):
        self.destroyed = True


class TestTrap:
    def test_no_leave_yields_code_zero(self):
        cleanup = CTrapCleanup()
        with cleanup.trap() as result:
            pass
        assert result.code == 0
        assert not result.left

    def test_leave_caught_and_code_exposed(self):
        cleanup = CTrapCleanup()
        with cleanup.trap() as result:
            cleanup.leave(KERR_NO_MEMORY)
        assert result.left
        assert result.code == KERR_NO_MEMORY

    def test_leave_without_trap_panics_69(self):
        cleanup = CTrapCleanup()
        with pytest.raises(PanicRequest) as exc:
            cleanup.leave(KERR_GENERAL)
        assert exc.value.panic_id == E32USER_CBASE_69

    def test_nested_traps_catch_at_innermost(self):
        cleanup = CTrapCleanup()
        with cleanup.trap() as outer:
            with cleanup.trap() as inner:
                cleanup.leave(-3)
            assert inner.code == -3
        assert outer.code == 0

    def test_trap_depth_tracking(self):
        cleanup = CTrapCleanup()
        assert cleanup.trap_depth == 0
        with cleanup.trap():
            assert cleanup.trap_depth == 1
        assert cleanup.trap_depth == 0

    def test_non_leave_exception_propagates(self):
        cleanup = CTrapCleanup()
        with pytest.raises(RuntimeError):
            with cleanup.trap():
                raise RuntimeError("not a leave")


class TestCleanupStack:
    def test_push_without_trap_panics_69(self):
        cleanup = CTrapCleanup()
        with pytest.raises(PanicRequest) as exc:
            cleanup.push(Tracked())
        assert exc.value.panic_id == E32USER_CBASE_69

    def test_leave_destroys_pushed_items(self):
        cleanup = CTrapCleanup()
        item = Tracked()
        with cleanup.trap() as result:
            cleanup.push(item)
            cleanup.leave(-1)
        assert result.left
        assert item.destroyed
        assert cleanup.depth == 0

    def test_leave_destroys_in_lifo_order(self):
        cleanup = CTrapCleanup()
        order = []

        class Ordered:
            def __init__(self, tag):
                self.tag = tag

            def destruct(self):
                order.append(self.tag)

        with cleanup.trap():
            cleanup.push(Ordered("a"))
            cleanup.push(Ordered("b"))
            cleanup.leave(-1)
        assert order == ["b", "a"]

    def test_leave_only_unwinds_to_trap_mark(self):
        cleanup = CTrapCleanup()
        outer_item = Tracked()
        inner_item = Tracked()
        with cleanup.trap():
            cleanup.push(outer_item)
            with cleanup.trap():
                cleanup.push(inner_item)
                cleanup.leave(-1)
            assert inner_item.destroyed
            assert not outer_item.destroyed
            cleanup.pop()

    def test_pop_does_not_destroy(self):
        cleanup = CTrapCleanup()
        item = Tracked()
        with cleanup.trap():
            cleanup.push(item)
            cleanup.pop()
        assert not item.destroyed

    def test_pop_and_destroy(self):
        cleanup = CTrapCleanup()
        item = Tracked()
        with cleanup.trap():
            cleanup.push(item)
            cleanup.pop_and_destroy()
        assert item.destroyed

    def test_pop_count(self):
        cleanup = CTrapCleanup()
        with cleanup.trap():
            for _ in range(3):
                cleanup.push(Tracked())
            cleanup.pop(2)
            assert cleanup.depth == 1
            cleanup.pop()

    def test_pop_underflow_panics_69(self):
        cleanup = CTrapCleanup()
        with cleanup.trap():
            with pytest.raises(PanicRequest) as exc:
                cleanup.pop(1)
            assert exc.value.panic_id == E32USER_CBASE_69

    def test_pop_negative_rejected(self):
        cleanup = CTrapCleanup()
        with cleanup.trap():
            with pytest.raises(ValueError):
                cleanup.pop(-1)

    def test_items_without_destructor_tolerated(self):
        cleanup = CTrapCleanup()
        with cleanup.trap():
            cleanup.push(object())
            cleanup.pop_and_destroy()


class TestTwoPhaseConstruction:
    class Widget:
        def __init__(self, fail=False):
            self.fail = fail
            self.constructed = False
            self.destroyed = False

        def construct_l(self):
            if self.fail:
                raise Leave(KERR_NO_MEMORY)
            self.constructed = True

        def destruct(self):
            self.destroyed = True

    def test_successful_construction(self):
        cleanup = CTrapCleanup()
        with cleanup.trap():
            widget = two_phase_new(cleanup, self.Widget)
        assert widget.constructed
        assert not widget.destroyed
        assert cleanup.depth == 0

    def test_failed_second_phase_destroys_object(self):
        cleanup = CTrapCleanup()
        built = []

        def first_phase():
            widget = self.Widget(fail=True)
            built.append(widget)
            return widget

        with cleanup.trap() as result:
            two_phase_new(cleanup, first_phase)
        assert result.code == KERR_NO_MEMORY
        assert built[0].destroyed
        assert cleanup.depth == 0
