"""Tests for the address-space model."""

import pytest

from repro.symbian.errors import AccessViolation
from repro.symbian.memory import GUARD_PAGE_END, AddressSpace


class TestMapping:
    def test_mapped_read_write(self):
        space = AddressSpace()
        region = space.map_region(64)
        space.write(region.base, 0x1234)
        assert space.read(region.base) == 0x1234

    def test_unwritten_words_read_zero(self):
        space = AddressSpace()
        region = space.map_region(64)
        assert space.read(region.base + 10) == 0

    def test_auto_bases_do_not_overlap(self):
        space = AddressSpace()
        a = space.map_region(64)
        b = space.map_region(64)
        assert a.limit <= b.base or b.limit <= a.base

    def test_explicit_overlap_rejected(self):
        space = AddressSpace()
        region = space.map_region(64)
        with pytest.raises(ValueError):
            space.map_region(64, base=region.base + 8)

    def test_null_page_not_mappable(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.map_region(64, base=0)
        with pytest.raises(ValueError):
            space.map_region(64, base=GUARD_PAGE_END - 1)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().map_region(0)

    def test_region_of(self):
        space = AddressSpace()
        region = space.map_region(64)
        assert space.region_of(region.base) is region
        assert space.region_of(region.limit) is None


class TestFaults:
    def test_null_read_faults(self):
        with pytest.raises(AccessViolation) as exc:
            AddressSpace().read(0)
        assert exc.value.address == 0
        assert exc.value.operation == "read"

    def test_null_write_faults(self):
        with pytest.raises(AccessViolation) as exc:
            AddressSpace().write(4, 1)
        assert exc.value.operation == "write"

    def test_unmapped_read_faults(self):
        with pytest.raises(AccessViolation):
            AddressSpace().read(0x5000_0000)

    def test_wild_execute_faults(self):
        with pytest.raises(AccessViolation) as exc:
            AddressSpace().execute(0xFFFF_0000)
        assert exc.value.operation == "execute"

    def test_mapped_execute_ok(self):
        space = AddressSpace()
        region = space.map_region(64)
        space.execute(region.base)

    def test_dangling_access_after_unmap(self):
        space = AddressSpace()
        region = space.map_region(64)
        space.write(region.base, 7)
        space.unmap_region(region)
        with pytest.raises(AccessViolation):
            space.read(region.base)

    def test_unmap_clears_contents(self):
        space = AddressSpace()
        region = space.map_region(64)
        space.write(region.base, 7)
        space.unmap_region(region)
        fresh = space.map_region(64, base=region.base)
        assert space.read(fresh.base) == 0

    def test_one_past_end_faults(self):
        space = AddressSpace()
        region = space.map_region(64)
        with pytest.raises(AccessViolation):
            space.read(region.limit)


class TestIntrospection:
    def test_is_mapped(self):
        space = AddressSpace()
        region = space.map_region(16)
        assert space.is_mapped(region.base)
        assert not space.is_mapped(0)

    def test_regions_snapshot(self):
        space = AddressSpace()
        space.map_region(16)
        space.map_region(16)
        assert len(space.regions()) == 2

    def test_repr(self):
        assert "regions=0" in repr(AddressSpace("proc"))
