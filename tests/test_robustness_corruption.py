"""Failure injection against the analysis pipeline itself.

A real collection campaign ships imperfect data: truncated lines,
flipped bytes, missing chunks, duplicated transfers.  The offline
pipeline must degrade gracefully — never crash, and keep its results
close to the clean-data results when corruption is mild.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.ingest import Dataset
from repro.analysis.report import build_report
from repro.core.rand import Stream
from repro.logger.logfile import LogStorage
from repro.logger.transfer import (
    CollectionServer,
    TransferBatch,
    TransferError,
)


def corrupt_lines(lines, stream, drop=0.0, truncate=0.0, garble=0.0):
    out = []
    for line in lines:
        roll = stream.random()
        if roll < drop:
            continue
        if roll < drop + truncate:
            out.append(line[: max(3, len(line) // 2)])
            continue
        if roll < drop + truncate + garble:
            index = stream.randint(0, max(len(line) - 1, 0))
            out.append(line[:index] + "#" + line[index + 1 :])
            continue
        out.append(line)
    return out


class TestMildCorruption:
    @pytest.fixture(scope="class")
    def clean(self, quick_campaign):
        return quick_campaign.fleet.collector.dataset()

    def run_with(self, clean, **rates):
        stream = Stream(42)
        corrupted = {
            phone_id: corrupt_lines(lines, stream, **rates)
            for phone_id, lines in clean.items()
        }
        dataset = Dataset.from_lines(corrupted)
        return build_report(dataset)

    def test_truncation_never_crashes(self, clean):
        report = self.run_with(clean, truncate=0.05)
        assert report.panic_table.total >= 0

    def test_garbling_never_crashes(self, clean):
        report = self.run_with(clean, garble=0.05)
        assert report.availability.phone_count > 0

    def test_drops_never_crash(self, clean):
        report = self.run_with(clean, drop=0.05)
        assert report.availability.phone_count > 0

    def test_mild_corruption_barely_moves_results(self, clean, quick_campaign):
        baseline = quick_campaign.report
        report = self.run_with(clean, drop=0.01, truncate=0.01, garble=0.01)
        # Event counts shrink at most proportionally to corruption.
        assert report.panic_table.total >= 0.9 * baseline.panic_table.total
        assert (
            report.availability.freeze_count
            >= 0.85 * baseline.availability.freeze_count
        )

    def test_heavy_corruption_still_terminates(self, clean):
        report = self.run_with(clean, drop=0.3, truncate=0.2, garble=0.2)
        assert report.panic_table.total >= 0

    def test_duplicated_transfer_is_visible_not_fatal(self, clean):
        """A transfer bug that ships every line twice doubles counts but
        must not break any invariant the pipeline checks."""
        doubled = {pid: lines + lines for pid, lines in clean.items()}
        dataset = Dataset.from_lines(doubled)
        report = build_report(dataset)
        assert report.panic_table.total >= 0
        if report.panic_table.total:
            assert sum(r.percent for r in report.panic_table.rows) == pytest.approx(
                100.0
            )


class ScriptedLink:
    """Transfer link whose per-attempt behavior follows a script.

    Actions: ``ok`` delivers, ``fail`` raises, ``dup`` delivers twice,
    ``hold`` withholds the batch (still acknowledged — the reorder
    case), ``release`` delivers the current batch and then every held
    one.  An exhausted script behaves as ``ok``.
    """

    def __init__(self, actions=()):
        self.actions = list(actions)
        self.held = []

    def deliver(self, batch, receive):
        action = self.actions.pop(0) if self.actions else "ok"
        if action == "fail":
            raise TransferError("scripted link failure")
        if action == "hold":
            self.held.append(batch)
            return
        receive(batch)
        if action == "dup":
            receive(batch)
        if action == "release":
            held, self.held = self.held, []
            for late in held:
                receive(late)

    def flush(self, receive):
        held, self.held = self.held, []
        for late in held:
            receive(late)


def filled_storage(phone_id="phone-00", count=5, start=0):
    """A log storage holding ``count`` distinct raw lines."""
    storage = LogStorage(phone_id)
    for index in range(start, start + count):
        storage.append_raw(f"line-{index:03d}")
    return storage


class TestCollectionServerCursorSemantics:
    """Idempotent cursor reconciliation under a misbehaving link."""

    def test_perfect_link_incremental_syncs(self):
        server = CollectionServer()
        storage = filled_storage(count=5)
        assert server.sync(storage) == 5
        assert server.sync(storage) == 0  # nothing new
        for index in range(5, 8):
            storage.append_raw(f"line-{index:03d}")
        assert server.sync(storage) == 3
        assert server.lines_for("phone-00") == [
            f"line-{i:03d}" for i in range(8)
        ]

    def test_duplicated_batch_applies_once(self):
        server = CollectionServer(link=ScriptedLink(["dup"]))
        storage = filled_storage(count=5)
        assert server.sync(storage) == 5
        assert server.lines_for("phone-00") == [
            f"line-{i:03d}" for i in range(5)
        ]
        assert server.stats.duplicate_entries_dropped == 5

    def test_reordered_batches_reassemble_in_order(self):
        server = CollectionServer(link=ScriptedLink(["hold", "release"]))
        storage = filled_storage(count=5)
        # First sync is withheld by the link but still acknowledged:
        # the client cursor moves on.
        assert server.sync(storage) == 5
        assert server.lines_for("phone-00") == []
        for index in range(5, 10):
            storage.append_raw(f"line-{index:03d}")
        # Second sync ships [5:10) first; the server buffers it, then
        # stitches both spans once the held batch lands.
        assert server.sync(storage) == 5
        assert server.lines_for("phone-00") == [
            f"line-{i:03d}" for i in range(10)
        ]
        assert server.stats.out_of_order_batches == 1
        assert server.stats.reassembled_batches == 1
        assert server.stats.duplicate_entries_dropped == 0

    def test_failed_sync_leaves_cursor_and_catches_up(self):
        server = CollectionServer(link=ScriptedLink(["fail"] * 4))
        storage = filled_storage(count=5)
        assert server.sync(storage) == 0
        assert server.stats.failed_syncs == 1
        assert server.stats.retries == 3  # 4 attempts = 3 retries
        # Modeled exponential backoff: 30 + 60 + 120 seconds.
        assert server.stats.backoff_seconds == pytest.approx(210.0)
        for index in range(5, 8):
            storage.append_raw(f"line-{index:03d}")
        # Script exhausted -> the next sync succeeds and re-ships the
        # whole unacknowledged span: no loss, no duplication.
        assert server.sync(storage) == 8
        assert server.lines_for("phone-00") == [
            f"line-{i:03d}" for i in range(8)
        ]

    def test_transient_failure_recovers_within_one_sync(self):
        server = CollectionServer(link=ScriptedLink(["fail", "ok"]))
        storage = filled_storage(count=5)
        assert server.sync(storage) == 5
        assert server.stats.retries == 1
        assert server.stats.backoff_seconds == pytest.approx(30.0)
        assert server.stats.failed_syncs == 0
        assert server.lines_for("phone-00") == [
            f"line-{i:03d}" for i in range(5)
        ]

    def test_interleaved_phones_have_independent_cursors(self):
        server = CollectionServer(link=ScriptedLink(["dup", "fail"] * 4))
        alpha = filled_storage("phone-aa", count=3)
        beta = filled_storage("phone-bb", count=4)
        # dup(alpha), then fail+ok(beta), dup(alpha tail), fail+ok(beta tail)
        assert server.sync(alpha) == 3
        assert server.sync(beta) == 4
        for index in range(3, 6):
            alpha.append_raw(f"line-{index:03d}")
        for index in range(4, 6):
            beta.append_raw(f"line-{index:03d}")
        assert server.sync(alpha) == 3
        assert server.sync(beta) == 2
        assert server.lines_for("phone-aa") == [
            f"line-{i:03d}" for i in range(6)
        ]
        assert server.lines_for("phone-bb") == [
            f"line-{i:03d}" for i in range(6)
        ]
        assert server.phone_ids() == ("phone-aa", "phone-bb")

    def test_overlapping_redelivery_is_trimmed(self):
        class OverlapLink:
            """Widens every batch to re-cover the previous span."""

            def __init__(self):
                self.prev = None

            def deliver(self, batch, receive):
                prev = self.prev
                if prev is not None and prev.phone_id == batch.phone_id:
                    receive(
                        TransferBatch(
                            batch.phone_id,
                            prev.start,
                            prev.entries + batch.entries,
                        )
                    )
                else:
                    receive(batch)
                self.prev = batch

            def flush(self, receive):
                pass

        server = CollectionServer(link=OverlapLink())
        storage = filled_storage(count=5)
        assert server.sync(storage) == 5
        for index in range(5, 8):
            storage.append_raw(f"line-{index:03d}")
        assert server.sync(storage) == 3
        assert server.lines_for("phone-00") == [
            f"line-{i:03d}" for i in range(8)
        ]
        assert server.stats.duplicate_entries_dropped == 5

    def test_finalize_flushes_still_held_batches(self):
        server = CollectionServer(link=ScriptedLink(["hold"]))
        storage = filled_storage(count=5)
        assert server.sync(storage) == 5
        assert server.lines_for("phone-00") == []
        server.finalize()
        assert server.lines_for("phone-00") == [
            f"line-{i:03d}" for i in range(5)
        ]

    def test_full_stale_redelivery_is_dropped(self):
        class StaleLink:
            """Re-delivers the very first batch after every later one."""

            def __init__(self):
                self.first = None

            def deliver(self, batch, receive):
                receive(batch)
                if self.first is None:
                    self.first = batch
                else:
                    receive(self.first)

            def flush(self, receive):
                pass

        server = CollectionServer(link=StaleLink())
        storage = filled_storage(count=4)
        assert server.sync(storage) == 4
        for index in range(4, 6):
            storage.append_raw(f"line-{index:03d}")
        assert server.sync(storage) == 2
        assert server.lines_for("phone-00") == [
            f"line-{i:03d}" for i in range(6)
        ]
        assert server.stats.duplicate_entries_dropped == 4

    def test_max_attempts_validation(self):
        with pytest.raises(ValueError):
            CollectionServer(max_attempts=0)


@given(
    drop=st.floats(min_value=0.0, max_value=0.4),
    truncate=st.floats(min_value=0.0, max_value=0.3),
    garble=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_pipeline_never_crashes_under_any_corruption(
    quick_campaign, drop, truncate, garble, seed
):
    """The hard property: no corruption mix crashes the pipeline."""
    clean = quick_campaign.fleet.collector.dataset()
    stream = Stream(seed)
    corrupted = {
        phone_id: corrupt_lines(
            lines, stream, drop=drop, truncate=truncate, garble=garble
        )
        for phone_id, lines in clean.items()
    }
    # Corruption can empty the dataset entirely; that is the one
    # legitimate error.
    try:
        dataset = Dataset.from_lines(corrupted)
    except Exception as exc:  # noqa: BLE001 - asserting the exact type below
        from repro.core.errors import AnalysisError

        assert isinstance(exc, AnalysisError)
        return
    report = build_report(dataset)
    assert report.panic_table.total >= 0
