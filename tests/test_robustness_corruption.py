"""Failure injection against the analysis pipeline itself.

A real collection campaign ships imperfect data: truncated lines,
flipped bytes, missing chunks, duplicated transfers.  The offline
pipeline must degrade gracefully — never crash, and keep its results
close to the clean-data results when corruption is mild.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.ingest import Dataset
from repro.analysis.report import build_report
from repro.core.rand import Stream


def corrupt_lines(lines, stream, drop=0.0, truncate=0.0, garble=0.0):
    out = []
    for line in lines:
        roll = stream.random()
        if roll < drop:
            continue
        if roll < drop + truncate:
            out.append(line[: max(3, len(line) // 2)])
            continue
        if roll < drop + truncate + garble:
            index = stream.randint(0, max(len(line) - 1, 0))
            out.append(line[:index] + "#" + line[index + 1 :])
            continue
        out.append(line)
    return out


class TestMildCorruption:
    @pytest.fixture(scope="class")
    def clean(self, quick_campaign):
        return quick_campaign.fleet.collector.dataset()

    def run_with(self, clean, **rates):
        stream = Stream(42)
        corrupted = {
            phone_id: corrupt_lines(lines, stream, **rates)
            for phone_id, lines in clean.items()
        }
        dataset = Dataset.from_lines(corrupted)
        return build_report(dataset)

    def test_truncation_never_crashes(self, clean):
        report = self.run_with(clean, truncate=0.05)
        assert report.panic_table.total >= 0

    def test_garbling_never_crashes(self, clean):
        report = self.run_with(clean, garble=0.05)
        assert report.availability.phone_count > 0

    def test_drops_never_crash(self, clean):
        report = self.run_with(clean, drop=0.05)
        assert report.availability.phone_count > 0

    def test_mild_corruption_barely_moves_results(self, clean, quick_campaign):
        baseline = quick_campaign.report
        report = self.run_with(clean, drop=0.01, truncate=0.01, garble=0.01)
        # Event counts shrink at most proportionally to corruption.
        assert report.panic_table.total >= 0.9 * baseline.panic_table.total
        assert (
            report.availability.freeze_count
            >= 0.85 * baseline.availability.freeze_count
        )

    def test_heavy_corruption_still_terminates(self, clean):
        report = self.run_with(clean, drop=0.3, truncate=0.2, garble=0.2)
        assert report.panic_table.total >= 0

    def test_duplicated_transfer_is_visible_not_fatal(self, clean):
        """A transfer bug that ships every line twice doubles counts but
        must not break any invariant the pipeline checks."""
        doubled = {pid: lines + lines for pid, lines in clean.items()}
        dataset = Dataset.from_lines(doubled)
        report = build_report(dataset)
        assert report.panic_table.total >= 0
        if report.panic_table.total:
            assert sum(r.percent for r in report.panic_table.rows) == pytest.approx(
                100.0
            )


@given(
    drop=st.floats(min_value=0.0, max_value=0.4),
    truncate=st.floats(min_value=0.0, max_value=0.3),
    garble=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_pipeline_never_crashes_under_any_corruption(
    quick_campaign, drop, truncate, garble, seed
):
    """The hard property: no corruption mix crashes the pipeline."""
    clean = quick_campaign.fleet.collector.dataset()
    stream = Stream(seed)
    corrupted = {
        phone_id: corrupt_lines(
            lines, stream, drop=drop, truncate=truncate, garble=garble
        )
        for phone_id, lines in clean.items()
    }
    # Corruption can empty the dataset entirely; that is the one
    # legitimate error.
    try:
        dataset = Dataset.from_lines(corrupted)
    except Exception as exc:  # noqa: BLE001 - asserting the exact type below
        from repro.core.errors import AnalysisError

        assert isinstance(exc, AnalysisError)
        return
    report = build_report(dataset)
    assert report.panic_table.total >= 0
