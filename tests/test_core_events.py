"""Tests for the event bus."""

from repro.core.events import EventBus


class TestSubscribePublish:
    def test_handler_receives_args(self):
        bus = EventBus()
        got = []
        bus.subscribe("t", lambda a, b: got.append((a, b)))
        bus.publish("t", 1, 2)
        assert got == [(1, 2)]

    def test_kwargs_pass_through(self):
        bus = EventBus()
        got = []
        bus.subscribe("t", lambda **kw: got.append(kw))
        bus.publish("t", key="value")
        assert got == [{"key": "value"}]

    def test_publish_returns_handler_count(self):
        bus = EventBus()
        bus.subscribe("t", lambda: None)
        bus.subscribe("t", lambda: None)
        assert bus.publish("t") == 2

    def test_publish_without_handlers_is_zero(self):
        assert EventBus().publish("nothing") == 0

    def test_handlers_called_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe("t", lambda: order.append("a"))
        bus.subscribe("t", lambda: order.append("b"))
        bus.publish("t")
        assert order == ["a", "b"]

    def test_topics_are_isolated(self):
        bus = EventBus()
        got = []
        bus.subscribe("a", lambda: got.append("a"))
        bus.publish("b")
        assert got == []


class TestCancellation:
    def test_cancelled_handler_not_called(self):
        bus = EventBus()
        got = []
        sub = bus.subscribe("t", lambda: got.append(1))
        sub.cancel()
        bus.publish("t")
        assert got == []

    def test_cancel_twice_is_noop(self):
        bus = EventBus()
        sub = bus.subscribe("t", lambda: None)
        sub.cancel()
        sub.cancel()

    def test_cancel_leaves_other_handlers(self):
        bus = EventBus()
        got = []
        sub = bus.subscribe("t", lambda: got.append("a"))
        bus.subscribe("t", lambda: got.append("b"))
        sub.cancel()
        bus.publish("t")
        assert got == ["b"]

    def test_handler_count(self):
        bus = EventBus()
        sub = bus.subscribe("t", lambda: None)
        assert bus.handler_count("t") == 1
        sub.cancel()
        assert bus.handler_count("t") == 0


class TestReentrancy:
    def test_subscription_during_publish_not_invoked_for_current_event(self):
        bus = EventBus()
        got = []

        def subscriber():
            bus.subscribe("t", lambda: got.append("late"))
            got.append("first")

        bus.subscribe("t", subscriber)
        bus.publish("t")
        assert got == ["first"]
        bus.publish("t")
        assert got == ["first", "first", "late"]

    def test_cancel_during_publish_still_delivers_current_event(self):
        # Snapshot semantics: the delivery set is fixed when the publish
        # starts, so a handler cancelled mid-flight by an earlier
        # handler still receives the in-progress event — but nothing
        # after it.
        bus = EventBus()
        got = []
        victim = bus.subscribe("t", lambda: got.append("victim"))
        bus.subscribe("t", lambda: (victim.cancel(), got.append("canceller")))
        bus.subscribe("t", lambda: got.append("victim2"))
        # Subscription order: victim fires first, then the canceller.
        bus.publish("t")
        assert got == ["victim", "canceller", "victim2"]
        bus.publish("t")
        assert got == ["victim", "canceller", "victim2", "canceller", "victim2"]

    def test_cancel_of_later_handler_during_publish(self):
        # The cancelled handler sits *after* the canceller in the
        # snapshot, and still gets the current event.
        bus = EventBus()
        got = []
        subs = {}
        bus.subscribe("t", lambda: (subs["late"].cancel(), got.append("first")))
        subs["late"] = bus.subscribe("t", lambda: got.append("late"))
        bus.publish("t")
        assert got == ["first", "late"]
        bus.publish("t")
        assert got == ["first", "late", "first"]

    def test_self_cancel_during_publish(self):
        bus = EventBus()
        got = []
        subs = {}
        subs["once"] = bus.subscribe(
            "t", lambda: (subs["once"].cancel(), got.append("once"))
        )
        bus.publish("t")
        bus.publish("t")
        assert got == ["once"]

    def test_nested_publish_sees_current_tables(self):
        bus = EventBus()
        got = []
        bus.subscribe("inner", lambda: got.append("inner"))
        bus.subscribe("outer", lambda: bus.publish("inner"))
        bus.subscribe("outer", lambda: got.append("outer"))
        bus.publish("outer")
        assert got == ["inner", "outer"]


class TestChurnScaling:
    def test_many_cancels_stay_fast(self):
        # Removal is keyed by the subscription handle (O(1) dict
        # delete), so subscribe/cancel churn — one subscription per AO
        # per power cycle in the simulator — must not scan the table.
        bus = EventBus()
        subs = [bus.subscribe("t", lambda: None) for _ in range(2000)]
        for sub in subs[:-1]:
            sub.cancel()
        assert bus.handler_count("t") == 1
        subs[-1].cancel()
        assert bus.handler_count("t") == 0
