"""Tests for availability figures and the Table 2 panic classification."""

import pytest

from repro.analysis.availability import compute_availability
from repro.analysis.panics import compute_panic_table
from repro.analysis.shutdowns import compute_shutdown_study
from repro.core.clock import HOUR
from repro.core.records import BootRecord, PanicRecord
from repro.symbian.panics import PanicId
from tests.helpers import dataset_from_records


def boot(time, kind, beat_time):
    return BootRecord(time, kind, beat_time)


class TestAvailability:
    def test_pooled_mtbf(self):
        # One phone observed 100 h with two freezes.
        records = [
            boot(0.0, "NONE", 0.0),
            boot(10 * HOUR, "ALIVE", 9 * HOUR),
            boot(50 * HOUR, "ALIVE", 49 * HOUR),
        ]
        dataset = dataset_from_records({"p": records}, end_time=100 * HOUR)
        stats = compute_availability(dataset)
        assert stats.freeze_count == 2
        assert stats.mtbf_freeze_hours == pytest.approx(50.0)
        assert stats.freeze_interval_days == pytest.approx(50.0 / 24.0)

    def test_self_shutdown_mtbf(self):
        records = [
            boot(0.0, "NONE", 0.0),
            boot(10 * HOUR + 80, "REBOOT", 10 * HOUR),
        ]
        dataset = dataset_from_records({"p": records}, end_time=50 * HOUR)
        stats = compute_availability(dataset)
        assert stats.self_shutdown_count == 1
        assert stats.mtbf_self_shutdown_hours == pytest.approx(50.0, rel=0.01)

    def test_no_events_infinite_mtbf(self):
        dataset = dataset_from_records(
            {"p": [boot(0.0, "NONE", 0.0)]}, end_time=100 * HOUR
        )
        stats = compute_availability(dataset)
        assert stats.mtbf_freeze_hours == float("inf")
        assert stats.combined_failure_rate_per_hour == 0.0

    def test_per_phone_average(self):
        # phone a: 100 h, 1 freeze -> 100; phone b: 100 h, 2 freezes -> 50.
        records_a = [boot(0.0, "NONE", 0.0), boot(10 * HOUR, "ALIVE", 9 * HOUR)]
        records_b = [
            boot(0.0, "NONE", 0.0),
            boot(10 * HOUR, "ALIVE", 9 * HOUR),
            boot(20 * HOUR, "ALIVE", 19 * HOUR),
        ]
        dataset = dataset_from_records(
            {"a": records_a, "b": records_b}, end_time=100 * HOUR
        )
        stats = compute_availability(dataset)
        assert stats.per_phone_mtbf_freeze_hours == pytest.approx(75.0)
        assert stats.mtbf_freeze_hours == pytest.approx(200.0 / 3.0)

    def test_failure_interval_is_mean_of_the_two(self):
        records = [
            boot(0.0, "NONE", 0.0),
            boot(10 * HOUR, "ALIVE", 9 * HOUR),
            boot(20 * HOUR + 80, "REBOOT", 20 * HOUR),
        ]
        dataset = dataset_from_records({"p": records}, end_time=120 * HOUR)
        stats = compute_availability(dataset)
        expected = (
            stats.freeze_interval_days + stats.self_shutdown_interval_days
        ) / 2.0
        assert stats.failure_interval_days == pytest.approx(expected)

    def test_accepts_precomputed_study(self):
        records = [boot(0.0, "NONE", 0.0), boot(10 * HOUR, "ALIVE", 9 * HOUR)]
        dataset = dataset_from_records({"p": records}, end_time=100 * HOUR)
        study = compute_shutdown_study(dataset)
        stats = compute_availability(dataset, study)
        assert stats.freeze_count == 1


class TestPanicTable:
    def make_dataset(self, panic_specs):
        records = [boot(0.0, "NONE", 0.0)]
        for i, (category, ptype) in enumerate(panic_specs):
            records.append(PanicRecord(10.0 + i, category, ptype, "App"))
        return dataset_from_records({"p": records}, end_time=HOUR)

    def test_counts_and_percentages(self):
        dataset = self.make_dataset(
            [("KERN-EXEC", 3)] * 3 + [("USER", 11)] * 1
        )
        table = compute_panic_table(dataset)
        assert table.total == 4
        assert table.percent_of("KERN-EXEC", 3) == pytest.approx(75.0)
        assert table.percent_of("USER", 11) == pytest.approx(25.0)

    def test_rows_carry_documentation(self):
        table = compute_panic_table(self.make_dataset([("KERN-EXEC", 3)]))
        assert "dereferencing NULL" in table.rows[0].meaning

    def test_category_ordering_by_frequency(self):
        dataset = self.make_dataset(
            [("USER", 11)] * 5 + [("KERN-EXEC", 3)] * 2
        )
        table = compute_panic_table(dataset)
        assert table.rows[0].panic_id.category == "USER"

    def test_headline_aggregates(self):
        dataset = self.make_dataset(
            [("KERN-EXEC", 3)] * 56
            + [("E32USER-CBase", 69)] * 10
            + [("E32USER-CBase", 33)] * 8
            + [("USER", 11)] * 26
        )
        table = compute_panic_table(dataset)
        assert table.access_violation_percent == pytest.approx(56.0)
        assert table.heap_management_percent == pytest.approx(18.0)

    def test_category_totals(self):
        dataset = self.make_dataset([("USER", 10), ("USER", 11), ("KERN-EXEC", 3)])
        totals = compute_panic_table(dataset).category_totals()
        assert totals["USER"] == pytest.approx(200.0 / 3.0)
        assert list(totals)[0] == "USER"

    def test_empty_dataset(self):
        table = compute_panic_table(self.make_dataset([]))
        assert table.total == 0
        assert table.rows == []
        assert table.access_violation_percent == 0.0

    def test_unknown_panic_tolerated(self):
        dataset = self.make_dataset([("FUTURE-CAT", 99)])
        table = compute_panic_table(dataset)
        assert table.rows[0].panic_id == PanicId("FUTURE-CAT", 99)
        assert "Unregistered" in table.rows[0].meaning


class TestOnRealCampaign:
    def test_kern_exec_3_dominates(self, quick_campaign):
        table = quick_campaign.report.panic_table
        assert table.total > 10
        top = max(table.rows, key=lambda r: r.count)
        assert top.panic_id == PanicId("KERN-EXEC", 3)
        assert 35.0 < table.access_violation_percent < 75.0

    def test_percentages_sum_to_100(self, quick_campaign):
        table = quick_campaign.report.panic_table
        assert sum(row.percent for row in table.rows) == pytest.approx(100.0)

    def test_panic_records_match_table_total(self, quick_campaign):
        assert quick_campaign.dataset.total_panics == quick_campaign.report.panic_table.total
