"""Telemetry layer: registry semantics, tracing, export, determinism.

The acceptance bar mirrors the sweep runner's: telemetry must be a pure
observer.  Same seed => identical counter values and identical sim-time
span trees, across repeated runs and across both ingest doors; a merged
4-worker registry must equal the serial sweep's; and the Chrome-trace
exporter must emit schema-valid JSON.
"""

import json

import pytest

from repro.core.clock import MONTH
from repro.experiments.cache import CampaignCache
from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.runner import (
    TelemetryTask,
    merged_metrics,
    run_campaigns,
    run_campaigns_resilient,
)
from repro.experiments.summary import CampaignSummary
from repro.logger.transfer import CollectionServer, TransferBatch, TransferError
from repro.observability.export import (
    chrome_trace,
    hotspot_summary,
    validate_chrome_trace,
)
from repro.observability.metrics import MetricsRegistry, merge_registries
from repro.observability.telemetry import (
    TELEMETRY_METRICS,
    TELEMETRY_TRACE,
    Telemetry,
    current_telemetry,
)
from repro.observability.tracer import SpanTracer
from repro.phone.fleet import FleetConfig

SEEDS = [31, 32, 33, 34]


def tiny_config(seed: int) -> CampaignConfig:
    """A 3-phone, 1-month campaign: fast, but every mechanism runs."""
    return CampaignConfig(
        fleet=FleetConfig(phone_count=3, duration=1 * MONTH), seed=seed
    )


# -- metrics registry ------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_labels_and_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("faults", help="by layer")
        counter.inc(layer="storage")
        counter.inc(2.0, layer="transfer")
        assert counter.value(layer="storage") == 1.0
        assert counter.value(layer="transfer") == 2.0
        assert counter.total() == 3.0
        assert registry.counter_totals() == {"faults": 3.0}

    def test_get_or_create_is_stable_and_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x")
        assert registry.counter("x") is first
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 7.0):
            hist.observe(value)
        series = hist.series()
        assert series.buckets == [1, 2, 1]
        assert series.count == 4
        assert series.min == 0.5
        assert series.max == 50.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", bounds=(10.0, 1.0))

    def test_dict_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3.0, kind="a")
        registry.gauge("g").set(2.5)
        registry.histogram("h", bounds=(1.0,)).observe(0.5, phone="p0")
        data = json.loads(json.dumps(registry.to_dict()))
        assert MetricsRegistry.from_dict(data).to_dict() == registry.to_dict()

    def test_deterministic_dict_excludes_wall_metrics(self):
        registry = MetricsRegistry()
        registry.counter("sim").inc()
        registry.histogram("wall", deterministic=False).observe(0.1)
        assert set(registry.deterministic_dict()) == {"sim"}
        assert set(registry.to_dict()) == {"sim", "wall"}

    def test_merge_sums_and_takes_extrema(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1.0, k="x")
        b.counter("c").inc(2.0, k="x")
        b.counter("c").inc(5.0, k="y")
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(1.0,)).observe(3.0)
        a.merge(b)
        assert a.counter("c").value(k="x") == 3.0
        assert a.counter("c").value(k="y") == 5.0
        series = a.histogram("h", bounds=(1.0,)).series()
        assert series.buckets == [1, 1]
        assert (series.min, series.max) == (0.5, 3.0)

    def test_merge_registries_is_order_independent(self):
        dicts = []
        for k, totals in enumerate(([0.1, 0.2, 0.3], [1e9], [7.7, 0.004])):
            registry = MetricsRegistry()
            for value in totals:
                registry.histogram("h").observe(value)
            registry.counter("c").inc(float(k + 1))
            dicts.append(registry.to_dict())
        forward = merge_registries(dicts).to_dict()
        reverse = merge_registries(list(reversed(dicts))).to_dict()
        rotated = merge_registries(dicts[1:] + dicts[:1]).to_dict()
        assert forward == reverse == rotated

    def test_delta_dict_complements_merge(self):
        """A snapshot plus its delta merges back to the current state —
        the identity the live op-log's incremental flushes rely on."""
        registry = MetricsRegistry()
        registry.counter("c").inc(3.0, k="x")
        registry.gauge("g").set(2.0)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        base = registry.to_dict()
        assert registry.delta_dict(base) == {}  # nothing changed
        registry.counter("c").inc(4.0, k="x")
        registry.counter("c").inc(1.0, k="y")
        registry.gauge("g").set(7.0)
        registry.histogram("h", bounds=(1.0,)).observe(5.0)
        delta = registry.delta_dict(base)
        assert merge_registries([base, delta]).to_dict() == registry.to_dict()


# -- tracer ---------------------------------------------------------------------


class TestSpanTracer:
    def test_nesting_and_sim_tree(self):
        clock = {"now": 0.0}
        tracer = SpanTracer(sim_clock=lambda: clock["now"])
        with tracer.span("outer"):
            clock["now"] = 5.0
            with tracer.span("inner", category="stage"):
                clock["now"] = 7.0
        (root,) = tracer.roots
        tree = root.sim_tree()
        assert tree["name"] == "outer"
        assert tree["sim_start"] == 0.0 and tree["sim_end"] == 7.0
        (inner,) = tree["children"]
        assert inner["name"] == "inner"
        assert inner["sim_start"] == 5.0 and inner["sim_end"] == 7.0

    def test_instants_attach_to_open_span(self):
        tracer = SpanTracer()
        with tracer.span("parent"):
            tracer.instant("blip", category="kernel")
        (root,) = tracer.roots
        (blip,) = root.children
        assert blip.instant
        assert blip.wall_duration == 0.0

    def test_exception_still_closes_span(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.open_depth == 0
        assert tracer.spans_named("doomed")[0].wall_end is not None


# -- telemetry facade -----------------------------------------------------------


class TestTelemetry:
    def test_levels(self):
        assert not Telemetry("off").metrics
        metrics = Telemetry("metrics")
        assert metrics.metrics and not metrics.tracing
        trace = Telemetry("trace")
        assert trace.metrics and trace.tracing

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            Telemetry("verbose")

    def test_installed_scoping(self):
        tel = Telemetry(TELEMETRY_METRICS)
        before = current_telemetry()
        with tel.installed():
            assert current_telemetry() is tel
        assert current_telemetry() is before

    def test_span_is_noop_below_trace(self):
        tel = Telemetry(TELEMETRY_METRICS)
        with tel.span("ignored"):
            pass
        assert len(tel.tracer) == 0


# -- campaign determinism -------------------------------------------------------


class TestCampaignTelemetryDeterminism:
    def _snapshot(self, seed: int, pipeline: str = "structured"):
        tel = Telemetry(TELEMETRY_TRACE)
        run_campaign(tiny_config(seed), pipeline=pipeline, telemetry=tel)
        return tel.registry.deterministic_dict(), tel.tracer.sim_forest()

    def test_same_seed_same_counters_and_span_tree(self):
        metrics_a, forest_a = self._snapshot(SEEDS[0])
        metrics_b, forest_b = self._snapshot(SEEDS[0])
        assert metrics_a == metrics_b
        assert forest_a == forest_b
        assert metrics_a["sim.events_fired_total"]["series"][0]["value"] > 0

    def test_counters_identical_across_pipeline_doors(self):
        metrics_s, forest_s = self._snapshot(SEEDS[1], pipeline="structured")
        metrics_t, forest_t = self._snapshot(SEEDS[1], pipeline="text")
        assert metrics_s == metrics_t
        assert forest_s == forest_t

    def test_off_level_records_nothing(self):
        result = run_campaign(tiny_config(SEEDS[0]))
        assert result.telemetry == {}

    def test_snapshot_rides_in_summary(self):
        tel = Telemetry(TELEMETRY_METRICS)
        result = run_campaign(tiny_config(SEEDS[0]), telemetry=tel)
        summary = CampaignSummary.from_result(result)
        round_tripped = CampaignSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert round_tripped.telemetry == summary.telemetry
        assert round_tripped.telemetry["metrics"] == tel.registry.to_dict()


class TestSweepTelemetryMerge:
    def test_four_worker_merge_equals_serial(self):
        configs = [tiny_config(seed) for seed in SEEDS]
        task = TelemetryTask(TELEMETRY_METRICS)
        serial = run_campaigns(configs, workers=1, task=task)
        pooled = run_campaigns(configs, workers=4, task=task)
        merged_serial = merged_metrics(serial).deterministic_dict()
        merged_pooled = merged_metrics(pooled).deterministic_dict()
        assert merged_pooled == merged_serial
        assert merged_pooled["sim.events_fired_total"]["series"][0]["value"] > 0

    def test_manifest_merged_metrics(self):
        configs = [tiny_config(seed) for seed in SEEDS[:2]]
        manifest = run_campaigns_resilient(
            configs, task=TelemetryTask(TELEMETRY_METRICS)
        )
        totals = manifest.merged_metrics().counter_totals()
        assert totals["phone.boots_total"] > 0


# -- failure manifest (satellite: per-attempt wall time + watchdog) -------------


def _always_fails(config):
    raise RuntimeError(f"injected failure for seed {config.seed}")


class TestFailureManifestTiming:
    def test_failure_carries_attempt_wall_times(self):
        manifest = run_campaigns_resilient(
            [tiny_config(SEEDS[0])], task=_always_fails, retries=2
        )
        (failure,) = manifest.failures
        assert failure.attempts == 3
        assert len(failure.attempt_wall_seconds) == 3
        assert all(wall >= 0.0 for wall in failure.attempt_wall_seconds)
        assert failure.watchdog_seconds is None  # serial: never armed
        data = failure.to_dict()
        assert len(data["attempt_wall_seconds"]) == 3
        assert data["watchdog_seconds"] is None

    def test_pooled_failure_records_watchdog_deadline(self):
        configs = [tiny_config(seed) for seed in SEEDS[:2]]
        manifest = run_campaigns_resilient(
            configs, workers=2, task=_always_fails, retries=0, timeout=120.0
        )
        assert len(manifest.failures) == 2
        for failure in manifest.failures:
            assert failure.attempt_wall_seconds
            # Armed for the pooled attempt (or None if the pool could
            # not start and execution fell back to serial).
            assert failure.watchdog_seconds in (120.0, None)


# -- dropped_total accounting ---------------------------------------------------


class _AlwaysDownLink:
    def deliver(self, batch, receive):
        raise TransferError("link down")

    def flush(self, receive):
        pass


class TestDroppedTotal:
    def test_transfer_retry_sites_count_drops(self):
        tel = Telemetry(TELEMETRY_METRICS)
        with tel.installed():
            server = CollectionServer(link=_AlwaysDownLink(), max_attempts=3)

            class _Storage:
                phone_id = "phone-00"

                @staticmethod
                def entries(cursor):
                    return [object(), object()]

            assert server.sync(_Storage()) == 0
        dropped = tel.registry.counter("dropped_total")
        assert dropped.value(site="transfer.delivery_attempt") == 3.0
        assert dropped.value(site="transfer.sync_exhausted") == 2.0

    def test_cache_corrupt_entry_counts_drop(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        config = tiny_config(SEEDS[0])
        path = cache.path_for(config)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        tel = Telemetry(TELEMETRY_METRICS)
        with tel.installed():
            assert cache.get(config) is None
        dropped = tel.registry.counter("dropped_total")
        assert dropped.value(site="cache.corrupt_entry") == 1.0
        assert tel.registry.counter("cache.evictions_total").total() == 1.0
        lookups = tel.registry.counter("cache.lookups_total")
        assert lookups.value(outcome="miss") == 1.0


# -- fault instrumentation ------------------------------------------------------


class TestFaultInstrumentation:
    def test_injected_faults_become_labeled_events(self):
        from repro.robustness.injectors import FaultyLink
        from repro.robustness.plan import FaultPlan

        plan = FaultPlan(seed=99, sync_failure_rate=1.0)
        tel = Telemetry(TELEMETRY_TRACE)
        with tel.installed():
            link = FaultyLink(plan)
            with pytest.raises(TransferError):
                link.deliver(
                    TransferBatch("phone-00", 0, [object()]), lambda b: None
                )
        faults = tel.registry.counter("robustness.faults_injected_total")
        assert faults.value(layer="transfer", kind="failed_attempt") == 1.0
        assert tel.tracer.spans_named("fault transfer.failed_attempt")


# -- exporters ------------------------------------------------------------------


class TestExport:
    def _traced_run(self, seed: int = SEEDS[0]):
        tel = Telemetry(TELEMETRY_TRACE)
        run_campaign(tiny_config(seed), telemetry=tel)
        return tel

    def test_chrome_trace_is_schema_valid(self):
        tel = self._traced_run()
        trace = chrome_trace(tel.tracer, tel.registry)
        assert validate_chrome_trace(trace) == []
        # JSON-native all the way down.
        reloaded = json.loads(json.dumps(trace))
        assert validate_chrome_trace(reloaded) == []
        names = {event["name"] for event in trace["traceEvents"]}
        assert {"campaign", "simulate", "ingest", "report"} <= names

    def test_trace_has_wall_and_sim_timelines(self):
        tel = self._traced_run()
        trace = chrome_trace(tel.tracer)
        pids = {
            event["pid"]
            for event in trace["traceEvents"]
            if event["ph"] == "X"
        }
        assert pids == {1, 2}

    def test_validator_flags_garbage(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []

    def test_hotspot_summary_orders_by_self_time(self):
        tel = self._traced_run()
        rows = hotspot_summary(tel.tracer, top=5)
        assert rows
        selfs = [row["self_seconds"] for row in rows]
        assert selfs == sorted(selfs, reverse=True)


# -- disabled path --------------------------------------------------------------


class TestDisabledPath:
    def test_disabled_components_hold_no_handles(self):
        from repro.core.engine import Simulator
        from repro.core.events import EventBus

        sim = Simulator()
        assert sim._horizon_hist is None
        # The bus keeps intrinsic int stats (sampled at campaign end)
        # instead of telemetry handles, so there is nothing to disable.
        bus = EventBus()
        assert (bus.publishes, bus.deliveries) == (0, 0)
        bus.publish("nobody-listens")
        assert (bus.publishes, bus.deliveries) == (1, 0)

    def test_reports_identical_with_and_without_telemetry(self):
        config = tiny_config(SEEDS[2])
        plain = run_campaign(config)
        traced = run_campaign(tiny_config(SEEDS[2]), telemetry=Telemetry("trace"))
        assert plain.report.to_dict() == traced.report.to_dict()
        assert plain.ground_truth == traced.ground_truth
