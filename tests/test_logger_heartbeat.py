"""Tests for the Heartbeat AO and beats file, including the
virtual/periodic equivalence property."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.engine import Simulator
from repro.core.records import BEAT_ALIVE, BEAT_NONE, BEAT_REBOOT
from repro.logger.heartbeat import (
    MODE_PERIODIC,
    MODE_VIRTUAL,
    BeatsFile,
    Heartbeat,
)


class TestBeatsFile:
    def test_empty_reads_none(self):
        assert BeatsFile().last_event() == (BEAT_NONE, 0.0)

    def test_last_write_wins(self):
        beats = BeatsFile()
        beats.write(BEAT_ALIVE, 1.0)
        beats.write(BEAT_REBOOT, 2.0)
        assert beats.last_event() == (BEAT_REBOOT, 2.0)

    def test_write_counter(self):
        beats = BeatsFile()
        beats.write(BEAT_ALIVE, 1.0)
        beats.write(BEAT_ALIVE, 2.0)
        assert beats.writes == 2


class TestLifecycle:
    def test_start_writes_alive(self):
        sim = Simulator()
        beats = BeatsFile()
        hb = Heartbeat(beats, sim, period=60.0)
        hb.start(0.0)
        assert beats.last_event() == (BEAT_ALIVE, 0.0)
        assert hb.running

    def test_double_start_rejected(self):
        sim = Simulator()
        hb = Heartbeat(BeatsFile(), sim)
        hb.start(0.0)
        with pytest.raises(ValueError):
            hb.start(1.0)

    def test_shutdown_writes_final_kind(self):
        sim = Simulator()
        beats = BeatsFile()
        hb = Heartbeat(beats, sim, period=60.0)
        hb.start(0.0)
        sim.run_until(125.0)
        hb.shutdown(BEAT_REBOOT, 125.0)
        assert beats.last_event() == (BEAT_REBOOT, 125.0)
        assert not hb.running

    def test_halt_leaves_quantized_alive(self):
        sim = Simulator()
        beats = BeatsFile()
        hb = Heartbeat(beats, sim, period=60.0, mode=MODE_VIRTUAL)
        hb.start(0.0)
        sim.run_until(125.0)
        hb.halt(125.0)
        kind, time = beats.last_event()
        assert kind == BEAT_ALIVE
        assert time == 120.0  # latest grid point <= halt time

    def test_halt_exactly_on_grid(self):
        sim = Simulator()
        beats = BeatsFile()
        hb = Heartbeat(beats, sim, period=60.0)
        hb.start(10.0)
        hb.halt(130.0)
        assert beats.last_event() == (BEAT_ALIVE, 130.0)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat(BeatsFile(), Simulator(), period=0.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat(BeatsFile(), Simulator(), mode="psychic")


class TestPeriodicMode:
    def test_beats_written_every_period(self):
        sim = Simulator()
        beats = BeatsFile()
        hb = Heartbeat(beats, sim, period=10.0, mode=MODE_PERIODIC)
        hb.start(0.0)
        sim.run_until(35.0)
        # start + ticks at 10, 20, 30
        assert beats.writes == 4
        assert beats.last_event() == (BEAT_ALIVE, 30.0)

    def test_halt_stops_ticks(self):
        sim = Simulator()
        beats = BeatsFile()
        hb = Heartbeat(beats, sim, period=10.0, mode=MODE_PERIODIC)
        hb.start(0.0)
        sim.run_until(15.0)
        hb.halt(15.0)
        sim.run_until(100.0)
        assert beats.last_event() == (BEAT_ALIVE, 10.0)

    def test_shutdown_stops_ticks(self):
        sim = Simulator()
        beats = BeatsFile()
        hb = Heartbeat(beats, sim, period=10.0, mode=MODE_PERIODIC)
        hb.start(0.0)
        sim.run_until(15.0)
        hb.shutdown(BEAT_REBOOT, 15.0)
        sim.run_until(100.0)
        assert beats.last_event() == (BEAT_REBOOT, 15.0)


@given(
    period=st.floats(min_value=1.0, max_value=600.0),
    start=st.floats(min_value=0.0, max_value=1000.0),
    uptime=st.floats(min_value=0.0, max_value=5000.0),
)
@settings(max_examples=100, deadline=None)
def test_virtual_and_periodic_modes_agree_on_halt(period, start, uptime):
    """The central heartbeat property: the observable outcome (last beat
    at a freeze) is identical in the cheap virtual mode and the faithful
    periodic mode.

    Halts landing within a microsecond of a beat-grid point are
    excluded: at the exact boundary, float rounding legitimately tips
    the two computations (``start + k*period`` vs ``elapsed / period``)
    to opposite sides.
    """
    phase = uptime % period
    assume(phase > 1e-6 and period - phase > 1e-6)
    halt_time = start + uptime

    sim_v = Simulator()
    beats_v = BeatsFile()
    hb_v = Heartbeat(beats_v, sim_v, period=period, mode=MODE_VIRTUAL)
    sim_v.run_until(start)
    hb_v.start(start)
    sim_v.run_until(halt_time)
    hb_v.halt(halt_time)

    sim_p = Simulator()
    beats_p = BeatsFile()
    hb_p = Heartbeat(beats_p, sim_p, period=period, mode=MODE_PERIODIC)
    sim_p.run_until(start)
    hb_p.start(start)
    sim_p.run_until(halt_time)
    hb_p.halt(halt_time)

    kind_v, time_v = beats_v.last_event()
    kind_p, time_p = beats_p.last_event()
    assert kind_v == kind_p == BEAT_ALIVE
    assert time_v == pytest.approx(time_p, abs=1e-6)
