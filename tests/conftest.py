"""Shared fixtures: campaigns are expensive, so session-scope them."""

from __future__ import annotations

import pytest

from repro.experiments.campaign import CampaignResult, run_campaign
from repro.experiments.config import CampaignConfig


@pytest.fixture(scope="session")
def quick_campaign() -> CampaignResult:
    """A small campaign (6 phones, 2 months) shared by analysis tests."""
    return run_campaign(CampaignConfig.quick(seed=1234))


@pytest.fixture(scope="session")
def paper_campaign() -> CampaignResult:
    """The paper-scale campaign (25 phones, 14 months), run once."""
    return run_campaign(CampaignConfig.paper_scale(seed=2005))
