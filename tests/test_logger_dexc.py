"""Tests for the D_EXC baseline (panic-only) logger."""

import pytest

from repro.analysis.ingest import Dataset
from repro.analysis.panics import compute_panic_table
from repro.core.clock import MONTH
from repro.core.engine import Simulator
from repro.core.rand import RandomStreams
from repro.core.records import PanicRecord
from repro.logger.dexc import attach_dexc
from repro.phone.device import SmartPhone
from repro.phone.fleet import Fleet, FleetConfig
from repro.phone.profiles import make_profile
from repro.symbian.errors import PanicRaised


@pytest.fixture()
def rig():
    sim = Simulator()
    profile = make_profile("phone-00", RandomStreams(6).fork("phone-00"))
    device = SmartPhone(sim, profile)
    dexc = attach_dexc(device)
    device.boot()
    return sim, device, dexc


def crash_app(device, name="Camera"):
    process = device.open_app(name)
    with pytest.raises(PanicRaised):
        device.os.kernel.execute(process, lambda: process.space.read(0))


class TestDexcLogger:
    def test_panics_recorded(self, rig):
        _sim, device, dexc = rig
        crash_app(device)
        records = dexc.storage.records()
        assert len(records) == 1
        assert isinstance(records[0], PanicRecord)
        assert records[0].category == "KERN-EXEC"

    def test_records_only_panics(self, rig):
        _sim, device, dexc = rig
        device.begin_call(60.0)
        device.end_call()
        crash_app(device)
        assert dexc.storage.line_count == 1  # no activity/runapp/boot lines

    def test_survives_reboots(self, rig):
        sim, device, dexc = rig
        crash_app(device, "Camera")
        device.graceful_shutdown("user")
        sim.run_until(sim.now + 60)
        device.boot()
        crash_app(device, "Clock")
        assert dexc.panics_recorded == 2

    def test_keeps_recording_during_maoff(self, rig):
        """The baseline's one advantage: it is not the logger the user
        turned off."""
        _sim, device, dexc = rig
        device.stop_logger()
        crash_app(device)
        assert dexc.panics_recorded == 1
        # ...while the main logger missed it entirely.
        main_panics = [
            r for r in device.storage.records() if isinstance(r, PanicRecord)
        ]
        assert main_panics == []

    def test_stops_at_freeze(self, rig):
        sim, device, dexc = rig
        device.freeze()
        # Nothing runs while frozen; count unchanged.
        assert dexc.panics_recorded == 0


class TestDexcOnFleet:
    @pytest.fixture(scope="class")
    def fleet(self):
        config = FleetConfig(
            phone_count=4,
            duration=3 * MONTH,
            enroll_fraction_min=0.0,
            enroll_fraction_max=0.1,
            attach_dexc=True,
        )
        fleet = Fleet(config, seed=21)
        fleet.run()
        return fleet

    def test_dexc_reproduces_table2(self, fleet):
        full = Dataset.from_collector(fleet.collector, end_time=fleet.config.duration)
        dexc = Dataset.from_lines(
            fleet.dexc_dataset(), end_time=fleet.config.duration
        )
        table_full = compute_panic_table(full)
        table_dexc = compute_panic_table(dexc)
        # D_EXC sees every panic the full logger saw (and possibly the
        # MAOFF-window ones the full logger missed).
        assert table_dexc.total >= table_full.total
        full_counts = {r.panic_id: r.count for r in table_full.rows}
        dexc_counts = {r.panic_id: r.count for r in table_dexc.rows}
        for pid, count in full_counts.items():
            assert dexc_counts.get(pid, 0) >= count

    def test_dexc_cannot_answer_failure_questions(self, fleet):
        dexc = Dataset.from_lines(
            fleet.dexc_dataset(), end_time=fleet.config.duration
        )
        for log in dexc.logs.values():
            assert log.boots == []  # no freeze/shutdown discrimination
            assert log.activities == []  # no Table 3
            assert log.runapps == []  # no Table 4 / Figure 6
            assert log.power == []

    def test_dexc_disabled_by_default(self):
        config = FleetConfig(phone_count=1, duration=MONTH)
        fleet = Fleet(config, seed=3)
        fleet.build()
        assert fleet.phones[0].dexc is None
        assert fleet.dexc_dataset() == {}
