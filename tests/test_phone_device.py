"""Tests for the SmartPhone lifecycle and activity plumbing."""

import pytest

from repro.core.engine import Simulator
from repro.core.rand import RandomStreams
from repro.core.records import (
    ActivityRecord,
    BEAT_ALIVE,
    BEAT_REBOOT,
    BootRecord,
    PanicRecord,
    RunningAppsRecord,
)
from repro.phone.device import (
    SELF_SHUTDOWN_GRACE,
    STATE_FROZEN,
    STATE_OFF,
    STATE_ON,
    SmartPhone,
)
from repro.phone.profiles import make_profile
from repro.symbian.errors import PanicRaised
from repro.symbian.panics import PHONE_APP_2


@pytest.fixture()
def phone():
    sim = Simulator()
    profile = make_profile("phone-00", RandomStreams(1).fork("phone-00"))
    return SmartPhone(sim, profile)


def records_of(phone, cls):
    return [r for r in phone.storage.records() if isinstance(r, cls)]


class TestPowerLifecycle:
    def test_initial_state_off(self, phone):
        assert phone.state == STATE_OFF
        assert not phone.is_on

    def test_boot(self, phone):
        phone.boot()
        assert phone.is_on
        assert phone.boot_count == 1
        assert phone.daemon is not None and phone.daemon.active

    def test_double_boot_rejected(self, phone):
        phone.boot()
        with pytest.raises(ValueError):
            phone.boot()

    def test_graceful_shutdown_writes_reboot_beat(self, phone):
        phone.boot()
        phone.sim.run_until(50.0)
        phone.graceful_shutdown("user")
        assert phone.state == STATE_OFF
        assert phone.beats.last_event() == (BEAT_REBOOT, 50.0)

    def test_shutdown_requires_on(self, phone):
        with pytest.raises(ValueError):
            phone.graceful_shutdown("user")

    def test_invalid_shutdown_kind(self, phone):
        phone.boot()
        with pytest.raises(ValueError):
            phone.graceful_shutdown("pull")

    def test_freeze_leaves_alive_beat(self, phone):
        phone.boot()
        phone.sim.run_until(500.0)
        phone.freeze()
        assert phone.state == STATE_FROZEN
        assert phone.beats.last_event()[0] == BEAT_ALIVE

    def test_freeze_then_pull_then_boot_detects_freeze(self, phone):
        phone.boot()
        phone.sim.run_until(500.0)
        phone.freeze()
        phone.sim.run_until(600.0)
        phone.battery_pull()
        assert phone.state == STATE_OFF
        phone.sim.run_until(700.0)
        phone.boot()
        boots = records_of(phone, BootRecord)
        assert boots[-1].last_beat_kind == BEAT_ALIVE

    def test_pull_requires_not_off(self, phone):
        with pytest.raises(ValueError):
            phone.battery_pull()

    def test_shutdown_counts(self, phone):
        phone.boot()
        phone.graceful_shutdown("user")
        phone.boot()
        phone.freeze()
        phone.battery_pull()
        assert phone.shutdown_counts["user"] == 1
        assert phone.shutdown_counts["pull"] == 1
        assert phone.freeze_count == 1
        assert phone.battery_pull_count == 1

    def test_listeners_fired(self, phone):
        events = []
        phone.boot_listeners.append(lambda: events.append("boot"))
        phone.shutdown_listeners.append(lambda kind: events.append(f"down:{kind}"))
        phone.freeze_listeners.append(lambda: events.append("freeze"))
        phone.boot()
        phone.freeze()
        phone.battery_pull()
        assert events == ["boot", "freeze", "down:pull"]

    def test_enroll_record_only_once(self, phone):
        phone.boot()
        phone.graceful_shutdown("user")
        phone.boot()
        from repro.core.records import EnrollRecord

        enrolls = records_of(phone, EnrollRecord)
        assert len(enrolls) == 1


class TestApps:
    def test_open_close(self, phone):
        phone.boot()
        phone.open_app("Camera")
        assert phone.running_apps() == ("Camera",)
        phone.close_app("Camera")
        assert phone.running_apps() == ()

    def test_open_twice_returns_same_process(self, phone):
        phone.boot()
        first = phone.open_app("Camera")
        second = phone.open_app("Camera")
        assert first is second

    def test_close_unknown_ignored(self, phone):
        phone.boot()
        phone.close_app("Ghost")

    def test_apps_cleared_on_shutdown(self, phone):
        phone.boot()
        phone.open_app("Camera")
        phone.graceful_shutdown("user")
        phone.boot()
        assert phone.running_apps() == ()

    def test_app_changes_logged(self, phone):
        phone.boot()
        phone.open_app("Camera")
        phone.close_app("Camera")
        snaps = records_of(phone, RunningAppsRecord)
        assert [s.apps for s in snaps] == [(), ("Camera",), ()]

    def test_panicking_app_removed_from_registry(self, phone):
        phone.boot()
        process = phone.open_app("Camera")
        with pytest.raises(PanicRaised):
            phone.os.kernel.execute(process, lambda: process.space.read(0))
        assert phone.running_apps() == ()
        assert phone.app_process("Camera") is None


class TestActivities:
    def test_call_lifecycle(self, phone):
        phone.boot()
        assert phone.begin_call(60.0)
        assert phone.current_activity == "voice_call"
        assert "Telephone" in phone.running_apps()
        phone.end_call()
        assert phone.current_activity is None
        assert "Telephone" not in phone.running_apps()
        acts = records_of(phone, ActivityRecord)
        assert [(a.kind, a.phase) for a in acts] == [
            ("voice_call", "start"),
            ("voice_call", "end"),
        ]

    def test_message_lifecycle(self, phone):
        phone.boot()
        assert phone.begin_message(30.0)
        phone.end_message()
        acts = records_of(phone, ActivityRecord)
        assert [(a.kind, a.phase) for a in acts] == [
            ("message", "start"),
            ("message", "end"),
        ]

    def test_no_concurrent_activities(self, phone):
        phone.boot()
        phone.begin_call(60.0)
        assert not phone.begin_message(30.0)

    def test_activity_rejected_when_off(self, phone):
        assert not phone.begin_call(60.0)

    def test_end_call_noop_without_call(self, phone):
        phone.boot()
        phone.end_call()

    def test_consecutive_calls(self, phone):
        phone.boot()
        phone.begin_call(60.0)
        phone.end_call()
        assert phone.begin_call(60.0)
        phone.end_call()
        assert phone.os.phone_app.calls_completed == 2

    def test_activity_listeners(self, phone):
        seen = []
        phone.activity_listeners.append(lambda k, p, d: seen.append((k, p)))
        phone.boot()
        phone.begin_message(10.0)
        phone.end_message()
        assert seen == [("message", "start"), ("message", "end")]


class TestLogCorruption:
    def test_freeze_with_corruption_truncates_last_line(self, phone):
        phone.boot()
        phone.open_app("Camera")
        intact = list(phone.storage.lines())
        phone.sim.run_until(100.0)
        phone.freeze(corrupt_tail=True)
        lines = phone.storage.lines()
        assert len(lines) == len(intact)
        assert lines[-1] != intact[-1]
        assert lines[-1] == intact[-1][: len(lines[-1])]

    def test_corrupted_log_still_parses_tolerantly(self, phone):
        phone.boot()
        phone.open_app("Camera")
        phone.sim.run_until(100.0)
        phone.freeze(corrupt_tail=True)
        records = phone.storage.records()  # tolerant parse: no raise
        # Only the truncated final line is lost.
        assert len(records) == phone.storage.line_count - 1

    def test_pull_with_corruption(self, phone):
        phone.boot()
        phone.sim.run_until(50.0)
        phone.battery_pull(corrupt_tail=True)
        assert phone.state == STATE_OFF

    def test_freeze_without_corruption_keeps_lines_intact(self, phone):
        phone.boot()
        phone.open_app("Camera")
        phone.sim.run_until(100.0)
        phone.freeze()
        assert len(phone.storage.records()) == phone.storage.line_count


class TestCriticalPanics:
    def test_phone_app_panic_triggers_self_shutdown(self, phone):
        phone.boot()
        os_runtime = phone.os
        with pytest.raises(PanicRaised):
            os_runtime.kernel.execute(
                os_runtime.phone_process,
                lambda: os_runtime.phone_app.transition("connected"),
            )
        assert phone.is_on  # not yet: the kernel grants grace time
        phone.sim.run_until(phone.sim.now + SELF_SHUTDOWN_GRACE + 1)
        assert phone.state == STATE_OFF
        assert phone.shutdown_counts["self"] == 1

    def test_self_shutdown_records_panic_and_reboot_beat(self, phone):
        phone.boot()
        os_runtime = phone.os
        with pytest.raises(PanicRaised):
            os_runtime.kernel.execute(
                os_runtime.phone_process,
                lambda: os_runtime.phone_app.transition("connected"),
            )
        phone.sim.run_until(phone.sim.now + SELF_SHUTDOWN_GRACE + 1)
        panics = records_of(phone, PanicRecord)
        assert panics[-1].category == PHONE_APP_2.category
        assert phone.beats.last_event()[0] == BEAT_REBOOT


class TestLoggerControl:
    def test_stop_and_restart_logger(self, phone):
        phone.boot()
        phone.sim.run_until(10.0)
        phone.stop_logger()
        assert phone.daemon is None
        assert phone.beats.last_event()[0] == "MAOFF"
        phone.sim.run_until(20.0)
        phone.restart_logger()
        boots = records_of(phone, BootRecord)
        assert boots[-1].last_beat_kind == "MAOFF"

    def test_stop_twice_is_noop(self, phone):
        phone.boot()
        phone.stop_logger()
        phone.stop_logger()

    def test_restart_while_running_is_noop(self, phone):
        phone.boot()
        daemon = phone.daemon
        phone.restart_logger()
        assert phone.daemon is daemon

    def test_panic_during_maoff_not_recorded(self, phone):
        phone.boot()
        phone.stop_logger()
        process = phone.open_app("Camera")
        with pytest.raises(PanicRaised):
            phone.os.kernel.execute(process, lambda: process.space.read(0))
        assert records_of(phone, PanicRecord) == []
