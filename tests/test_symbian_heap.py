"""Tests for the RHeap allocator."""

import pytest

from repro.symbian.errors import KERR_NO_MEMORY, Leave, PanicRequest
from repro.symbian.heap import RHeap
from repro.symbian.memory import AddressSpace
from repro.symbian.panics import E32USER_CBASE_91, E32USER_CBASE_92


def make_heap(words: int = 256) -> RHeap:
    return RHeap(AddressSpace(), max_words=words)


class TestAllocation:
    def test_alloc_returns_writable_payload(self):
        heap = make_heap()
        address = heap.alloc(8)
        heap.space.write(address, 42)
        assert heap.space.read(address) == 42

    def test_alloc_distinct_cells(self):
        heap = make_heap()
        a = heap.alloc(8)
        b = heap.alloc(8)
        assert a != b
        assert abs(a - b) >= 8

    def test_alloc_exhaustion_returns_none(self):
        heap = make_heap(words=16)
        assert heap.alloc(64) is None

    def test_alloc_l_leaves_on_exhaustion(self):
        heap = make_heap(words=16)
        with pytest.raises(Leave) as exc:
            heap.alloc_l(64)
        assert exc.value.code == KERR_NO_MEMORY

    def test_alloc_l_success(self):
        heap = make_heap()
        assert heap.owns(heap.alloc_l(8))

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            make_heap().alloc(0)

    def test_cell_accounting(self):
        heap = make_heap()
        a = heap.alloc(8)
        heap.alloc(4)
        assert heap.cell_count == 2
        assert heap.allocated_words == 12
        assert heap.cell_size(a) == 8

    def test_cell_size_of_unknown_address(self):
        with pytest.raises(ValueError):
            make_heap().cell_size(0x123)


class TestFree:
    def test_free_reduces_cell_count(self):
        heap = make_heap()
        address = heap.alloc(8)
        heap.free(address)
        assert heap.cell_count == 0
        assert not heap.owns(address)

    def test_double_free_panics_92(self):
        heap = make_heap()
        address = heap.alloc(8)
        heap.free(address)
        with pytest.raises(PanicRequest) as exc:
            heap.free(address)
        assert exc.value.panic_id == E32USER_CBASE_92

    def test_foreign_pointer_free_panics_92(self):
        heap = make_heap()
        heap.alloc(8)
        with pytest.raises(PanicRequest) as exc:
            heap.free(0xDEAD)
        assert exc.value.panic_id == E32USER_CBASE_92

    def test_free_offset_pointer_panics(self):
        heap = make_heap()
        address = heap.alloc(8)
        with pytest.raises(PanicRequest):
            heap.free(address + 1)


class TestFreeListReuse:
    def test_freed_cell_is_reused(self):
        heap = make_heap()
        first = heap.alloc(8)
        heap.free(first)
        second = heap.alloc(8)
        assert second == first

    def test_reused_cell_has_valid_header(self):
        heap = make_heap()
        address = heap.alloc(8)
        heap.free(address)
        heap.alloc(8)
        heap.check()  # the recycled header must be intact

    def test_different_size_not_reused(self):
        heap = make_heap()
        first = heap.alloc(8)
        heap.free(first)
        other = heap.alloc(4)
        assert other != first

    def test_alloc_free_cycle_never_exhausts(self):
        heap = make_heap(words=64)
        for _ in range(1_000):
            address = heap.alloc(8)
            assert address is not None
            heap.free(address)

    def test_leaking_exhausts_despite_free_list(self):
        heap = make_heap(words=64)
        allocations = 0
        while heap.alloc(8) is not None:
            allocations += 1
        assert allocations == 64 // 9  # (8 payload + 1 header) words


class TestIntegrity:
    def test_check_passes_on_healthy_heap(self):
        heap = make_heap()
        for _ in range(5):
            heap.alloc(4)
        heap.check()

    def test_corrupt_header_detected_as_91(self):
        heap = make_heap()
        address = heap.alloc(8)
        heap.corrupt_header(address)
        with pytest.raises(PanicRequest) as exc:
            heap.check()
        assert exc.value.panic_id == E32USER_CBASE_91

    def test_corrupt_header_of_unknown_address(self):
        with pytest.raises(ValueError):
            make_heap().corrupt_header(0x42)

    def test_check_after_free_is_clean(self):
        heap = make_heap()
        address = heap.alloc(8)
        heap.free(address)
        heap.check()


class TestConstruction:
    def test_too_small_heap_rejected(self):
        with pytest.raises(ValueError):
            RHeap(AddressSpace(), max_words=1)

    def test_repr(self):
        heap = make_heap()
        heap.alloc(8)
        assert "cells=1" in repr(heap)
