"""Tests for 16-bit descriptors, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbian.descriptors import TBuf16, TDes16, TDesC16
from repro.symbian.errors import PanicRequest
from repro.symbian.panics import USER_10, USER_11


def panic_of(exc_info) -> object:
    return exc_info.value.panic_id


class TestConstDescriptor:
    def test_length_and_str(self):
        d = TDesC16("hello")
        assert d.length() == 5
        assert d.as_str() == "hello"
        assert len(d) == 5

    def test_at(self):
        assert TDesC16("abc").at(1) == "b"

    def test_at_out_of_bounds_panics_user10(self):
        with pytest.raises(PanicRequest) as exc:
            TDesC16("abc").at(3)
        assert panic_of(exc) == USER_10

    def test_left(self):
        assert TDesC16("hello").left(2).as_str() == "he"

    def test_left_full_length_ok(self):
        assert TDesC16("hello").left(5).as_str() == "hello"

    def test_left_beyond_length_panics(self):
        with pytest.raises(PanicRequest) as exc:
            TDesC16("hello").left(6)
        assert panic_of(exc) == USER_10

    def test_right(self):
        assert TDesC16("hello").right(2).as_str() == "lo"

    def test_right_zero(self):
        assert TDesC16("hello").right(0).as_str() == ""

    def test_mid(self):
        assert TDesC16("hello").mid(1, 3).as_str() == "ell"

    def test_mid_to_end(self):
        assert TDesC16("hello").mid(2).as_str() == "llo"

    def test_mid_bad_position_panics(self):
        with pytest.raises(PanicRequest) as exc:
            TDesC16("hello").mid(9)
        assert panic_of(exc) == USER_10

    def test_mid_overlong_count_panics(self):
        with pytest.raises(PanicRequest) as exc:
            TDesC16("hello").mid(3, 4)
        assert panic_of(exc) == USER_10

    def test_compare(self):
        assert TDesC16("a").compare("b") == -1
        assert TDesC16("b").compare("a") == 1
        assert TDesC16("a").compare(TDesC16("a")) == 0

    def test_find(self):
        assert TDesC16("hello").find("ll") == 2
        assert TDesC16("hello").find("zz") == -1

    def test_equality_with_str(self):
        assert TDesC16("x") == "x"
        assert TDesC16("x") != "y"

    def test_hashable(self):
        assert hash(TDesC16("x")) == hash("x")


class TestModifiableDescriptor:
    def test_max_length(self):
        assert TDes16(10).max_length() == 10

    def test_initial_overflow_panics(self):
        with pytest.raises(PanicRequest) as exc:
            TDes16(2, "abc")
        assert panic_of(exc) == USER_11

    def test_negative_max_rejected(self):
        with pytest.raises(ValueError):
            TDes16(-1)

    def test_copy(self):
        d = TDes16(10, "old")
        d.copy("new")
        assert d.as_str() == "new"

    def test_copy_overflow_panics_user11(self):
        d = TDes16(3)
        with pytest.raises(PanicRequest) as exc:
            d.copy("toolong")
        assert panic_of(exc) == USER_11

    def test_append(self):
        d = TDes16(10, "ab")
        d.append("cd")
        assert d.as_str() == "abcd"

    def test_append_overflow_panics(self):
        d = TDes16(3, "ab")
        with pytest.raises(PanicRequest) as exc:
            d.append("cd")
        assert panic_of(exc) == USER_11

    def test_append_descriptor(self):
        d = TDes16(10, "ab")
        d.append(TDesC16("cd"))
        assert d.as_str() == "abcd"

    def test_insert(self):
        d = TDes16(10, "ad")
        d.insert(1, "bc")
        assert d.as_str() == "abcd"

    def test_insert_at_end(self):
        d = TDes16(10, "ab")
        d.insert(2, "c")
        assert d.as_str() == "abc"

    def test_insert_bad_position_panics_user10(self):
        d = TDes16(10, "ab")
        with pytest.raises(PanicRequest) as exc:
            d.insert(3, "x")
        assert panic_of(exc) == USER_10

    def test_insert_overflow_panics_user11(self):
        d = TDes16(3, "ab")
        with pytest.raises(PanicRequest) as exc:
            d.insert(1, "xy")
        assert panic_of(exc) == USER_11

    def test_delete(self):
        d = TDes16(10, "abcd")
        d.delete(1, 2)
        assert d.as_str() == "ad"

    def test_delete_clamps_count(self):
        d = TDes16(10, "abcd")
        d.delete(2, 99)
        assert d.as_str() == "ab"

    def test_delete_bad_position_panics(self):
        d = TDes16(10, "ab")
        with pytest.raises(PanicRequest) as exc:
            d.delete(5, 1)
        assert panic_of(exc) == USER_10

    def test_replace(self):
        d = TDes16(10, "abcd")
        d.replace(1, 2, "XY")
        assert d.as_str() == "aXYd"

    def test_replace_shrinks(self):
        d = TDes16(10, "abcd")
        d.replace(0, 3, "Z")
        assert d.as_str() == "Zd"

    def test_replace_range_out_of_bounds_panics_user10(self):
        d = TDes16(10, "ab")
        with pytest.raises(PanicRequest) as exc:
            d.replace(1, 5, "X")
        assert panic_of(exc) == USER_10

    def test_replace_overflow_panics_user11(self):
        d = TDes16(4, "abcd")
        with pytest.raises(PanicRequest) as exc:
            d.replace(1, 1, "LONG")
        assert panic_of(exc) == USER_11

    def test_fill(self):
        d = TDes16(10, "abc")
        d.fill("x")
        assert d.as_str() == "xxx"

    def test_fill_with_count(self):
        d = TDes16(10)
        d.fill("x", 4)
        assert d.as_str() == "xxxx"

    def test_fill_overflow_panics(self):
        d = TDes16(3)
        with pytest.raises(PanicRequest) as exc:
            d.fill("x", 4)
        assert panic_of(exc) == USER_11

    def test_fill_multichar_rejected(self):
        with pytest.raises(ValueError):
            TDes16(10).fill("xy")

    def test_fill_z(self):
        d = TDes16(10)
        d.fill_z(3)
        assert d.as_str() == "\x00\x00\x00"

    def test_set_length_shrink(self):
        d = TDes16(10, "abcd")
        d.set_length(2)
        assert d.as_str() == "ab"

    def test_set_length_grow_pads(self):
        d = TDes16(10, "ab")
        d.set_length(4)
        assert d.length() == 4
        assert d.as_str().startswith("ab")

    def test_set_length_beyond_max_panics_user11(self):
        d = TDes16(4)
        with pytest.raises(PanicRequest) as exc:
            d.set_length(5)
        assert panic_of(exc) == USER_11

    def test_set_length_negative_panics_user10(self):
        d = TDes16(4)
        with pytest.raises(PanicRequest) as exc:
            d.set_length(-1)
        assert panic_of(exc) == USER_10

    def test_zero(self):
        d = TDes16(10, "abc")
        d.zero()
        assert d.length() == 0

    def test_zero_terminate(self):
        d = TDes16(4, "abc")
        d.zero_terminate()
        assert d.as_str() == "abc\x00"

    def test_zero_terminate_at_max_panics(self):
        d = TDes16(3, "abc")
        with pytest.raises(PanicRequest) as exc:
            d.zero_terminate()
        assert panic_of(exc) == USER_11

    def test_tbuf_alias(self):
        buf = TBuf16(8, "hi")
        assert buf.as_str() == "hi"


# ---------------------------------------------------------------------------
# Hypothesis invariants: after ANY sequence of mutating operations that
# does not panic, length() <= max_length(); panics never corrupt state.
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["append", "insert", "delete", "replace", "set_length"]),
        st.integers(min_value=-2, max_value=20),
        st.text(alphabet="abxy", max_size=8),
    ),
    max_size=20,
)


@given(max_length=st.integers(min_value=0, max_value=16), ops=_ops)
@settings(max_examples=200, deadline=None)
def test_descriptor_never_exceeds_max_length(max_length, ops):
    d = TDes16(max_length)
    for name, pos, text in ops:
        before = d.as_str()
        try:
            if name == "append":
                d.append(text)
            elif name == "insert":
                d.insert(pos, text)
            elif name == "delete":
                d.delete(pos, len(text))
            elif name == "replace":
                d.replace(pos, min(len(text), 2), text)
            elif name == "set_length":
                d.set_length(pos)
        except PanicRequest as panic:
            # A panic must be one of the two descriptor panics and must
            # leave the content untouched (Symbian panics the thread; it
            # does not half-apply the operation).
            assert panic.panic_id in (USER_10, USER_11)
            assert d.as_str() == before
        assert d.length() <= max_length


@given(text=st.text(alphabet="abcde", max_size=12))
@settings(max_examples=100, deadline=None)
def test_left_right_partition(text):
    d = TDesC16(text)
    for k in range(len(text) + 1):
        assert d.left(k).as_str() + d.right(len(text) - k).as_str() == text
