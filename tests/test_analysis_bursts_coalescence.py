"""Tests for burst detection (Fig 3) and coalescence (Figs 4/5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bursts import compute_bursts
from repro.analysis.coalescence import (
    DEFAULT_WINDOW,
    HL_FREEZE,
    HL_SELF_SHUTDOWN,
    HlEvent,
    coalesce,
    hl_events_from_study,
    window_sweep,
)
from repro.analysis.shutdowns import compute_shutdown_study
from repro.core.records import BootRecord, PanicRecord
from tests.helpers import dataset_from_records


def boot(time, kind, beat_time):
    return BootRecord(time, kind, beat_time)


def panic(time, category="KERN-EXEC", ptype=3, process="App"):
    return PanicRecord(time, category, ptype, process)


class TestBursts:
    def make(self, times, gap=120.0, phones=None):
        if phones is None:
            phones = ["p"] * len(times)
        records = {"p": [boot(0.0, "NONE", 0.0)]}
        for phone_id in set(phones):
            records.setdefault(phone_id, [boot(0.0, "NONE", 0.0)])
        for t, phone_id in zip(times, phones):
            records[phone_id].append(panic(t))
        dataset = dataset_from_records(records, end_time=1e6)
        return compute_bursts(dataset, gap=gap)

    def test_isolated_panics_are_singleton_bursts(self):
        stats = self.make([100.0, 10_000.0, 20_000.0])
        assert [b.size for b in stats.bursts] == [1, 1, 1]
        assert stats.cascade_panic_percent == 0.0

    def test_close_panics_form_cascade(self):
        stats = self.make([100.0, 110.0, 130.0, 50_000.0])
        assert sorted(b.size for b in stats.bursts) == [1, 3]
        assert stats.cascade_panic_percent == pytest.approx(75.0)

    def test_gap_boundary_inclusive(self):
        stats = self.make([100.0, 220.0], gap=120.0)
        assert [b.size for b in stats.bursts] == [2]

    def test_gap_boundary_exceeded(self):
        stats = self.make([100.0, 221.0], gap=120.0)
        assert [b.size for b in stats.bursts] == [1, 1]

    def test_cross_phone_panics_never_merge(self):
        stats = self.make([100.0, 105.0], phones=["a", "b"])
        assert [b.size for b in stats.bursts] == [1, 1]

    def test_size_distribution_is_panic_weighted(self):
        stats = self.make([0.0, 10.0, 5_000.0])
        dist = stats.size_distribution()
        assert dist[2] == pytest.approx(200.0 / 3.0)
        assert dist[1] == pytest.approx(100.0 / 3.0)

    def test_invalid_gap_rejected(self):
        with pytest.raises(ValueError):
            self.make([1.0], gap=0.0)

    def test_max_burst_size(self):
        stats = self.make([0.0, 5.0, 10.0, 15.0])
        assert stats.max_burst_size == 4

    def test_empty(self):
        stats = self.make([])
        assert stats.total_panics == 0
        assert stats.size_distribution() == {}
        assert stats.max_burst_size == 0

    def test_burst_metadata(self):
        stats = self.make([100.0, 110.0])
        burst = stats.bursts[0]
        assert burst.start == 100.0
        assert burst.end == 110.0
        assert burst.first_category == "KERN-EXEC"


class TestCoalescence:
    def test_panic_matches_nearby_hl_event(self):
        dataset = dataset_from_records(
            {"p": [boot(0.0, "NONE", 0.0), panic(1000.0)]}, end_time=1e5
        )
        events = [HlEvent("p", 1100.0, HL_FREEZE)]
        result = coalesce(dataset, events, window=300.0)
        assert len(result.matches) == 1
        assert result.related_percent == 100.0
        assert not result.isolated_hl

    def test_far_hl_event_not_matched(self):
        dataset = dataset_from_records(
            {"p": [boot(0.0, "NONE", 0.0), panic(1000.0)]}, end_time=1e5
        )
        events = [HlEvent("p", 5000.0, HL_FREEZE)]
        result = coalesce(dataset, events, window=300.0)
        assert not result.matches
        assert len(result.isolated_panics) == 1
        assert len(result.isolated_hl) == 1

    def test_matching_is_symmetric(self):
        # Freeze estimate can precede the panic (beat quantization).
        dataset = dataset_from_records(
            {"p": [boot(0.0, "NONE", 0.0), panic(1000.0)]}, end_time=1e5
        )
        events = [HlEvent("p", 950.0, HL_FREEZE)]
        result = coalesce(dataset, events, window=300.0)
        assert len(result.matches) == 1

    def test_nearest_event_wins(self):
        dataset = dataset_from_records(
            {"p": [boot(0.0, "NONE", 0.0), panic(1000.0)]}, end_time=1e5
        )
        events = [
            HlEvent("p", 900.0, HL_FREEZE),
            HlEvent("p", 1050.0, HL_SELF_SHUTDOWN),
        ]
        result = coalesce(dataset, events, window=300.0)
        assert result.matches[0].hl_event.kind == HL_SELF_SHUTDOWN

    def test_phones_are_isolated(self):
        dataset = dataset_from_records(
            {
                "a": [boot(0.0, "NONE", 0.0), panic(1000.0)],
                "b": [boot(0.0, "NONE", 0.0)],
            },
            end_time=1e5,
        )
        events = [HlEvent("b", 1000.0, HL_FREEZE)]
        result = coalesce(dataset, events, window=300.0)
        assert not result.matches

    def test_invalid_window_rejected(self):
        dataset = dataset_from_records(
            {"p": [boot(0.0, "NONE", 0.0)]}, end_time=1e5
        )
        with pytest.raises(ValueError):
            coalesce(dataset, [], window=0.0)

    def test_matches_by_kind(self):
        dataset = dataset_from_records(
            {"p": [boot(0.0, "NONE", 0.0), panic(1000.0), panic(5000.0)]},
            end_time=1e5,
        )
        events = [
            HlEvent("p", 1100.0, HL_FREEZE),
            HlEvent("p", 5100.0, HL_SELF_SHUTDOWN),
        ]
        result = coalesce(dataset, events, window=300.0)
        assert result.matches_by_kind() == {HL_FREEZE: 1, HL_SELF_SHUTDOWN: 1}

    def test_window_sweep_monotone(self):
        dataset = dataset_from_records(
            {
                "p": [
                    boot(0.0, "NONE", 0.0),
                    panic(1000.0),
                    panic(3000.0),
                    panic(9000.0),
                ]
            },
            end_time=1e5,
        )
        events = [
            HlEvent("p", 1050.0, HL_FREEZE),
            HlEvent("p", 3500.0, HL_FREEZE),
            HlEvent("p", 20000.0, HL_FREEZE),
        ]
        sweep = window_sweep(dataset, events, [60.0, 600.0, 20000.0])
        counts = [count for _w, count in sweep]
        assert counts == sorted(counts)
        assert counts[0] == 1 and counts[-1] == 3


class TestHlEventsFromStudy:
    def make_study(self):
        records = [
            boot(0.0, "NONE", 0.0),
            boot(1000.0, "ALIVE", 900.0),  # freeze
            boot(2080.0, "REBOOT", 2000.0),  # self-shutdown (80 s)
            boot(40000.0, "REBOOT", 10000.0),  # user shutdown (long)
        ]
        dataset = dataset_from_records({"p": records}, end_time=1e5)
        return compute_shutdown_study(dataset)

    def test_default_excludes_user_shutdowns(self):
        events = hl_events_from_study(self.make_study())
        kinds = sorted(e.kind for e in events)
        assert kinds == [HL_FREEZE, HL_SELF_SHUTDOWN]

    def test_freeze_time_is_last_alive(self):
        events = hl_events_from_study(self.make_study())
        freeze = next(e for e in events if e.kind == HL_FREEZE)
        assert freeze.time == 900.0

    def test_include_user_shutdowns(self):
        events = hl_events_from_study(
            self.make_study(), include_user_shutdowns=True
        )
        assert len(events) == 3


@given(
    panic_times=st.lists(
        st.floats(min_value=0, max_value=1e6), min_size=0, max_size=30
    ),
    hl_times=st.lists(
        st.floats(min_value=0, max_value=1e6), min_size=0, max_size=10
    ),
    window=st.floats(min_value=1.0, max_value=10_000.0),
)
@settings(max_examples=100, deadline=None)
def test_coalescence_partition_property(panic_times, hl_times, window):
    """Every panic is either matched or isolated — never both, never
    neither — and matches respect the window."""
    records = [boot(0.0, "NONE", 0.0)]
    records += [panic(t) for t in sorted(panic_times)]
    dataset = dataset_from_records({"p": records}, end_time=2e6)
    events = [HlEvent("p", t, HL_FREEZE) for t in sorted(hl_times)]
    result = coalesce(dataset, events, window=window)
    assert len(result.matches) + len(result.isolated_panics) == len(panic_times)
    for match in result.matches:
        assert match.distance <= window
    for _phone, isolated in result.isolated_panics:
        for event in events:
            assert abs(event.time - isolated.time) > window or any(
                m.panic is isolated for m in result.matches
            )
