"""Tests for the battery model."""

import pytest

from repro.core.clock import HOUR
from repro.phone.battery import (
    CALL_DRAIN_PER_SECOND,
    IDLE_DRAIN_PER_HOUR,
    SHUTDOWN_LEVEL,
    Battery,
)


class TestDrain:
    def test_off_battery_holds_charge(self):
        battery = Battery(level=0.8)
        assert battery.level_at(100 * HOUR) == pytest.approx(0.8)

    def test_on_battery_drains_linearly(self):
        battery = Battery(level=1.0)
        battery.power_on(0.0)
        expected = 1.0 - 2 * IDLE_DRAIN_PER_HOUR
        assert battery.level_at(2 * HOUR) == pytest.approx(expected)

    def test_level_floors_at_zero(self):
        battery = Battery(level=0.01)
        battery.power_on(0.0)
        assert battery.level_at(100 * HOUR) == 0.0

    def test_power_off_stops_drain(self):
        battery = Battery(level=1.0)
        battery.power_on(0.0)
        battery.power_off(HOUR)
        level_at_off = battery.level_at(HOUR)
        assert battery.level_at(10 * HOUR) == pytest.approx(level_at_off)

    def test_call_drain_extra(self):
        battery = Battery(level=1.0)
        battery.power_on(0.0)
        battery.note_call_seconds(0.0, 600.0)
        assert battery.level_at(0.0) == pytest.approx(
            1.0 - 600.0 * CALL_DRAIN_PER_SECOND
        )

    def test_call_drain_ignored_when_off(self):
        battery = Battery(level=1.0)
        battery.note_call_seconds(0.0, 600.0)
        assert battery.level_at(0.0) == pytest.approx(1.0)


class TestCharging:
    def test_charging_increases_level(self):
        battery = Battery(level=0.2)
        battery.power_on(0.0)
        battery.start_charging(0.0)
        assert battery.level_at(HOUR) > 0.2

    def test_charge_caps_at_full(self):
        battery = Battery(level=0.5)
        battery.start_charging(0.0)
        assert battery.level_at(10 * HOUR) == 1.0

    def test_stop_charging_resumes_drain(self):
        battery = Battery(level=0.5)
        battery.power_on(0.0)
        battery.start_charging(0.0)
        battery.stop_charging(HOUR)
        top = battery.level_at(HOUR)
        assert battery.level_at(2 * HOUR) < top

    def test_charging_flag(self):
        battery = Battery()
        assert not battery.charging
        battery.start_charging(0.0)
        assert battery.charging


class TestShutdownPrediction:
    def test_time_until_shutdown_level(self):
        battery = Battery(level=1.0)
        battery.power_on(0.0)
        eta = battery.time_until_shutdown_level(0.0)
        expected = (1.0 - SHUTDOWN_LEVEL) / IDLE_DRAIN_PER_HOUR * HOUR
        assert eta == pytest.approx(expected)

    def test_none_when_off(self):
        battery = Battery(level=1.0)
        assert battery.time_until_shutdown_level(0.0) is None

    def test_none_when_charging(self):
        battery = Battery(level=1.0)
        battery.power_on(0.0)
        battery.start_charging(0.0)
        assert battery.time_until_shutdown_level(0.0) is None

    def test_zero_when_already_flat(self):
        battery = Battery(level=0.01)
        battery.power_on(0.0)
        assert battery.time_until_shutdown_level(0.0) == 0.0


class TestSetLevel:
    def test_set_level_clamps(self):
        battery = Battery()
        battery.set_level(0.0, 1.5)
        assert battery.level_at(0.0) == 1.0
        battery.set_level(1.0, -0.5)
        assert battery.level_at(1.0) == 0.0

    def test_repr(self):
        battery = Battery()
        battery.power_on(0.0)
        assert "on" in repr(battery)
