"""Tests for experiment configuration, comparison helpers, and the
paper ground-truth module."""

import pytest

from repro.core.errors import ConfigError
from repro.experiments import paper
from repro.experiments.compare import Comparison, ComparisonRow
from repro.experiments.config import CampaignConfig
from repro.phone.fleet import FleetConfig


class TestCampaignConfig:
    def test_paper_scale(self):
        config = CampaignConfig.paper_scale()
        assert config.fleet.phone_count == 25
        assert config.fleet.duration == pytest.approx(14 * 30.44 * 86400)

    def test_quick_is_small(self):
        config = CampaignConfig.quick()
        assert config.fleet.phone_count < 10
        assert config.fleet.duration < 0.25 * CampaignConfig.paper_scale().fleet.duration

    def test_invalid_phone_count(self):
        with pytest.raises(ConfigError):
            CampaignConfig(fleet=FleetConfig(phone_count=0))

    def test_invalid_duration(self):
        with pytest.raises(ConfigError):
            CampaignConfig(fleet=FleetConfig(duration=0.0))

    def test_invalid_window(self):
        with pytest.raises(ConfigError):
            CampaignConfig(coalescence_window=0.0)


class TestComparison:
    def test_ratio(self):
        row = ComparisonRow("x", paper=100.0, measured=110.0)
        assert row.ratio == pytest.approx(1.1)

    def test_ratio_zero_paper(self):
        assert ComparisonRow("x", 0.0, 0.0).ratio == 1.0
        assert ComparisonRow("x", 0.0, 5.0).ratio == float("inf")

    def test_within_factor(self):
        row = ComparisonRow("x", 100.0, 140.0)
        assert row.within_factor(1.5)
        assert not row.within_factor(1.2)

    def test_within_factor_symmetric(self):
        low = ComparisonRow("x", 100.0, 70.0)
        assert low.within_factor(1.5)
        assert not low.within_factor(1.2)

    def test_within_factor_invalid(self):
        with pytest.raises(ValueError):
            ComparisonRow("x", 1.0, 1.0).within_factor(0.5)

    def test_comparison_aggregate(self):
        comparison = Comparison("test")
        comparison.add("a", 100.0, 120.0)
        comparison.add("b", 50.0, 40.0)
        assert comparison.max_deviation_factor() == pytest.approx(1.25)
        assert comparison.all_within_factor(1.3)
        assert not comparison.all_within_factor(1.1)

    def test_render(self):
        comparison = Comparison("My comparison")
        comparison.add("quantity", 100.0, 98.0, unit="%")
        text = comparison.render()
        assert "My comparison" in text
        assert "quantity" in text
        assert "0.98x" in text


class TestPaperGroundTruth:
    def test_table2_sums_to_100(self):
        assert sum(paper.PAPER_TABLE2.values()) == pytest.approx(100.0, abs=0.1)

    def test_table1_sums_to_100(self):
        assert sum(paper.PAPER_TABLE1.values()) == pytest.approx(100.0, abs=0.1)

    def test_type_totals_sum_to_100(self):
        assert sum(paper.PAPER_TYPE_TOTALS.values()) == pytest.approx(100.0, abs=0.1)

    def test_headline_aggregates_consistent_with_table2(self):
        from repro.symbian import panics as P

        ke3 = paper.PAPER_TABLE2[P.KERN_EXEC_3]
        assert ke3 == pytest.approx(paper.ACCESS_VIOLATION_PERCENT, abs=1.0)
        heap = sum(
            pct
            for pid, pct in paper.PAPER_TABLE2.items()
            if pid.category == P.E32USER_CBASE
        )
        assert heap == pytest.approx(paper.HEAP_MANAGEMENT_PERCENT, abs=1.0)

    def test_interval_days_consistent_with_hours(self):
        assert paper.MTBF_FREEZE_HOURS / 24 == pytest.approx(
            paper.FREEZE_INTERVAL_DAYS, abs=0.1
        )
        assert paper.MTBS_HOURS / 24 == pytest.approx(
            paper.SELF_SHUTDOWN_INTERVAL_DAYS, abs=0.5
        )
        mean = (paper.FREEZE_INTERVAL_DAYS + paper.SELF_SHUTDOWN_INTERVAL_DAYS) / 2
        assert mean == pytest.approx(paper.FAILURE_INTERVAL_DAYS, abs=1.0)

    def test_every_table2_panic_is_registered(self):
        from repro.symbian.panics import is_known

        for pid in paper.PAPER_TABLE2:
            assert is_known(pid)

    def test_table3_row_totals_sum_to_100(self):
        assert sum(paper.PAPER_TABLE3_ROW_TOTALS.values()) == pytest.approx(
            100.0, abs=0.2
        )
