"""Tests for the diurnal/trend analysis."""

import pytest

from repro.analysis.coalescence import HL_FREEZE, HlEvent, hl_events_from_study
from repro.analysis.trends import compute_trends
from repro.core.clock import DAY, HOUR, MONTH
from repro.core.records import BootRecord
from tests.helpers import dataset_from_records


def boot(time, kind, beat_time):
    return BootRecord(time, kind, beat_time)


def make_dataset(end_time=2 * MONTH):
    return dataset_from_records(
        {"p": [boot(0.0, "NONE", 0.0)]}, end_time=end_time
    )


class TestHourly:
    def test_hours_binned_correctly(self):
        dataset = make_dataset()
        events = [
            HlEvent("p", 10 * HOUR + 30 * 60, HL_FREEZE),  # 10:30
            HlEvent("p", DAY + 10 * HOUR, HL_FREEZE),  # 10:00 next day
            HlEvent("p", 2 * DAY + 23 * HOUR, HL_FREEZE),  # 23:00
        ]
        trends = compute_trends(dataset, events)
        assert trends.hourly_percent[10] == pytest.approx(200.0 / 3.0)
        assert trends.hourly_percent[23] == pytest.approx(100.0 / 3.0)
        assert trends.total_events == 3

    def test_peak_hour(self):
        dataset = make_dataset()
        events = [HlEvent("p", 14 * HOUR + i * DAY, HL_FREEZE) for i in range(5)]
        events.append(HlEvent("p", 3 * HOUR, HL_FREEZE))
        assert compute_trends(dataset, events).peak_hour == 14

    def test_waking_share(self):
        dataset = make_dataset()
        events = [
            HlEvent("p", 12 * HOUR, HL_FREEZE),  # waking
            HlEvent("p", DAY + 3 * HOUR, HL_FREEZE),  # night
        ]
        trends = compute_trends(dataset, events)
        assert trends.waking_share(8, 23) == pytest.approx(50.0)

    def test_empty_events(self):
        trends = compute_trends(make_dataset(), [])
        assert trends.hourly_percent == {}
        assert trends.total_events == 0
        assert trends.peak_hour == 0


class TestMonthly:
    def test_exposure_respects_enrollment(self):
        # Phone enrolls mid-campaign: month 0 has no exposure.
        records = [boot(1.5 * MONTH, "NONE", 0.0)]
        dataset = dataset_from_records({"p": records}, end_time=3 * MONTH)
        trends = compute_trends(dataset, [])
        assert trends.monthly[0].observed_hours == 0.0
        assert trends.monthly[1].observed_hours == pytest.approx(
            0.5 * MONTH / HOUR, rel=0.01
        )
        assert trends.monthly[2].observed_hours == pytest.approx(
            MONTH / HOUR, rel=0.01
        )

    def test_failures_assigned_to_month(self):
        dataset = make_dataset(end_time=3 * MONTH)
        events = [
            HlEvent("p", 0.5 * MONTH, HL_FREEZE),
            HlEvent("p", 1.5 * MONTH, HL_FREEZE),
            HlEvent("p", 1.6 * MONTH, HL_FREEZE),
        ]
        trends = compute_trends(dataset, events)
        assert trends.monthly[0].failures == 1
        assert trends.monthly[1].failures == 2

    def test_rate_per_khr(self):
        dataset = make_dataset(end_time=MONTH)
        events = [HlEvent("p", 0.5 * MONTH, HL_FREEZE)]
        trends = compute_trends(dataset, events)
        expected = 1000.0 / (MONTH / HOUR)
        assert trends.monthly[0].rate_per_khr == pytest.approx(expected, rel=0.01)

    def test_flat_trend_zero_slope(self):
        dataset = make_dataset(end_time=4 * MONTH)
        # One failure per month: perfectly flat.
        events = [
            HlEvent("p", (i + 0.5) * MONTH, HL_FREEZE) for i in range(4)
        ]
        trends = compute_trends(dataset, events)
        assert trends.trend_slope_per_month() == pytest.approx(0.0, abs=1e-9)

    def test_increasing_trend_positive_slope(self):
        dataset = make_dataset(end_time=4 * MONTH)
        events = []
        for month in range(4):
            events.extend(
                HlEvent("p", month * MONTH + (k + 1) * DAY, HL_FREEZE)
                for k in range(month + 1)
            )
        trends = compute_trends(dataset, events)
        assert trends.trend_slope_per_month() > 0


class TestOnRealCampaign:
    def test_failures_concentrate_in_waking_hours(self, paper_campaign):
        """The §6 real-time-activity finding, rephrased temporally:
        failure density during waking hours exceeds the uniform share."""
        events = hl_events_from_study(paper_campaign.report.study)
        trends = compute_trends(paper_campaign.dataset, events)
        share = trends.waking_share(8, 23)
        uniform = 100.0 * 15 / 24
        assert share > uniform
        assert 8 <= trends.peak_hour < 23

    def test_campaign_rate_is_flat(self, paper_campaign):
        """Fixed firmware, stationary fault process: no drift."""
        events = hl_events_from_study(paper_campaign.report.study)
        trends = compute_trends(paper_campaign.dataset, events)
        slope = trends.trend_slope_per_month()
        mid_rates = [
            m.rate_per_khr for m in trends.monthly if m.observed_hours > 2000
        ]
        mean_rate = sum(mid_rates) / len(mid_rates)
        # Drift below 10% of the mean rate per month.
        assert abs(slope) < 0.1 * mean_rate
