"""The live telemetry plane (:mod:`repro.observability.live`).

Three contracts under test:

1. **Durability** — op-log records survive exactly as written: a reader
   never consumes a torn tail, and replayed/duplicated records fold
   idempotently (exactly-once per ``(stream, seq)``, including across
   kill -9 resume where a range has streams from several attempts).
2. **Purity** — live mode changes nothing: a ``--live`` run's merged
   summary is bit-identical to a non-live run and to the monolithic
   pipeline, resume included (the differential gate).
3. **Exposition** — the Prometheus snapshot and the dashboard render
   what the fold computed, and executor-category trace events land in
   their own Chrome-trace process group (pid 3) only when present.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import MONTH
from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.shard import run_sharded_campaign, shard_cache
from repro.experiments.summary import CampaignSummary
from repro.observability.export import (
    PID_EXEC,
    PID_SIM,
    PID_WALL,
    chrome_trace,
    validate_chrome_trace,
)
from repro.observability.live import (
    LiveFolder,
    OpLogReader,
    OpLogWriter,
    current_live_writer,
    install_live_writer,
    live_dir_for,
    progress_line,
    prom_gauges,
    render_dashboard,
    sparkline,
    write_prom_snapshot,
)
from repro.observability.metrics import MetricsRegistry, merge_registries
from repro.observability.prom import prometheus_text, write_prometheus
from repro.observability.telemetry import TELEMETRY_TRACE, Telemetry
from repro.phone.fleet import FleetConfig


def make_config(phones: int = 20, seed: int = 4242) -> CampaignConfig:
    fleet = FleetConfig(
        phone_count=phones,
        duration=MONTH,
        enroll_fraction_min=0.0,
        enroll_fraction_max=0.15,
    )
    return CampaignConfig(fleet=fleet, seed=seed)


def canonical(summary_dict: dict) -> str:
    return json.dumps(summary_dict, sort_keys=True)


@pytest.fixture(scope="module")
def config() -> CampaignConfig:
    return make_config()


@pytest.fixture(scope="module")
def monolithic(config) -> CampaignSummary:
    return CampaignSummary.from_result(run_campaign(config))


# -- op-log durability ----------------------------------------------------------


class TestOpLog:
    def test_round_trip(self, tmp_path):
        live = str(tmp_path / "live")
        writer = OpLogWriter(live, role="worker", min_interval=0.0)
        writer.begin_stream((0, 10), 100.0)
        assert writer.heartbeat(sim_now=50.0, events_fired=7)
        writer.end_stream(sim_now=100.0, events_fired=11)
        writer.close()

        records = OpLogReader(live).read_new()
        kinds = [record["kind"] for record in records]
        assert kinds == ["start", "heartbeat", "end"]
        assert [record["seq"] for record in records] == [0, 1, 2]
        stream = records[0]["stream"]
        assert all(record["stream"] == stream for record in records)
        assert records[1]["events_fired"] == 7
        assert records[2]["events_fired"] == 11

    def test_reader_skips_torn_tail(self, tmp_path):
        live = str(tmp_path / "live")
        writer = OpLogWriter(live, role="worker")
        writer.record("campaign", phones=10)
        writer.close()
        # A crash mid-write: a trailing fragment with no newline.
        with open(writer.path, "ab") as handle:
            handle.write(b'{"v": 1, "kind": "heartbeat", "tr')

        reader = OpLogReader(live)
        first = reader.read_new()
        assert [record["kind"] for record in first] == ["campaign"]
        # The torn tail stays pending until it completes...
        assert reader.read_new() == []
        with open(writer.path, "ab") as handle:
            handle.write(b'uncated": true}\n')
        # ...then the (garbled but complete) line parses or is skipped
        # as one unit; either way nothing before it is re-read.
        resumed = reader.read_new()
        assert len(resumed) <= 1

    def test_reader_skips_garbage_lines(self, tmp_path):
        live = str(tmp_path / "live")
        writer = OpLogWriter(live, role="worker")
        writer.record("campaign", phones=10)
        with open(writer.path, "ab") as handle:
            handle.write(b"not json at all\n")
        writer.record("coordinator", pending=3)
        writer.close()
        kinds = [r["kind"] for r in OpLogReader(live).read_new()]
        assert kinds == ["campaign", "coordinator"]

    def test_heartbeat_throttling(self, tmp_path):
        writer = OpLogWriter(
            str(tmp_path / "live"), role="worker", min_interval=3600.0
        )
        writer.begin_stream((0, 5), 10.0)
        assert writer.heartbeat(events_fired=1)
        assert not writer.heartbeat(events_fired=2)  # throttled
        assert writer.heartbeat(throttled=False, events_fired=3)
        writer.close()

    def test_install_and_current(self, tmp_path):
        assert current_live_writer() is None
        writer = OpLogWriter(str(tmp_path / "live"))
        previous = install_live_writer(writer)
        try:
            assert previous is None
            assert current_live_writer() is writer
        finally:
            install_live_writer(previous)
            writer.close()
        assert current_live_writer() is None


# -- registry delta snapshots ---------------------------------------------------


class TestDeltaDict:
    def test_counter_gauge_histogram_deltas(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(5.0)
        registry.gauge("depth").set(3.0)
        registry.histogram("lat", bounds=(1.0, 10.0)).observe(0.5)
        base = registry.to_dict()

        registry.counter("events").inc(2.0)
        registry.gauge("depth").set(9.0)
        registry.histogram("lat", bounds=(1.0, 10.0)).observe(5.0)
        delta = registry.delta_dict(base)

        assert delta["events"]["series"][0]["value"] == 2.0
        assert delta["depth"]["series"][0]["value"] == 6.0
        lat = delta["lat"]["series"][0]
        assert lat["count"] == 1
        assert lat["buckets"] == [0, 1, 0]

    def test_unchanged_series_dropped(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(1.0)
        registry.counter("b").inc(1.0)
        base = registry.to_dict()
        registry.counter("a").inc(1.0)
        delta = registry.delta_dict(base)
        assert "a" in delta and "b" not in delta

    def test_summed_deltas_reconstruct_cumulative(self):
        """base + sum(deltas) == final — the fold's core identity."""
        registry = MetricsRegistry()
        snapshots = []
        base = registry.to_dict()
        for round_number in range(1, 4):
            registry.counter("events").inc(float(round_number))
            registry.histogram("lat", bounds=(1.0,)).observe(round_number)
            snapshots.append(registry.delta_dict(base))
            base = registry.to_dict()
        folded = merge_registries(snapshots)
        assert folded.to_dict() == registry.to_dict()


# -- exactly-once fold ----------------------------------------------------------


def _write_stream(
    live_dir: str,
    phone_range,
    deltas,
    role: str = "worker",
) -> str:
    """One op-log stream whose heartbeats carry counter deltas."""
    registry = MetricsRegistry()
    writer = OpLogWriter(live_dir, role=role, min_interval=0.0)
    writer.begin_stream(phone_range, 100.0, registry=registry)
    for delta in deltas:
        registry.counter("events").inc(delta)
        writer.heartbeat(
            phone_range=list(phone_range),
            sim_now=50.0,
            duration=100.0,
            events_fired=int(sum(deltas)),
        )
    stream = writer.stream_id
    writer.end_stream(phone_range=list(phone_range))
    writer.close()
    return stream


class TestExactlyOnceFold:
    def test_deltas_fold_once(self, tmp_path):
        live = live_dir_for(str(tmp_path))
        _write_stream(live, (0, 10), [3.0, 4.0])
        snapshot = LiveFolder(str(tmp_path)).fold()
        totals = snapshot.metrics.counter_totals()
        assert totals.get("events") == 7.0

    def test_refolding_is_idempotent(self, tmp_path):
        live = live_dir_for(str(tmp_path))
        _write_stream(live, (0, 10), [3.0, 4.0])
        folder = LiveFolder(str(tmp_path))
        first = folder.fold()
        second = folder.fold()  # no new records
        assert (
            second.metrics.counter_totals() == first.metrics.counter_totals()
        )

    def test_duplicated_records_fold_once(self, tmp_path):
        """A replayed op-log file (same stream id, same seqs) is inert."""
        live = live_dir_for(str(tmp_path))
        _write_stream(live, (0, 10), [3.0, 4.0])
        source = sorted(os.listdir(live))[0]
        with open(os.path.join(live, source), "rb") as handle:
            payload = handle.read()
        with open(os.path.join(live, "worker-0-0.jsonl"), "wb") as handle:
            handle.write(payload)
        snapshot = LiveFolder(str(tmp_path)).fold()
        assert snapshot.metrics.counter_totals().get("events") == 7.0

    @settings(max_examples=20, deadline=None)
    @given(
        splits=st.lists(
            st.floats(min_value=0.5, max_value=8.0), min_size=1, max_size=6
        ),
        attempts=st.integers(min_value=1, max_value=3),
        data=st.data(),
    )
    def test_readopted_ranges_never_double_fold(
        self, tmp_path_factory, splits, attempts, data
    ):
        """Satellite: gauge/counter semantics under resume.

        A killed range may leave op-log streams from several attempts;
        however the attempts' records interleave across files, the fold
        adopts each phone range at most once, so the folded counter
        total never exceeds one attempt's cumulative sum.
        """
        tmp_path = tmp_path_factory.mktemp("interleave")
        live = live_dir_for(str(tmp_path))
        for _attempt in range(attempts):
            order = data.draw(st.permutations(list(range(len(splits)))))
            _write_stream(live, (0, 10), [splits[i] for i in order])
        snapshot = LiveFolder(str(tmp_path)).fold()
        total = snapshot.metrics.counter_totals().get("events", 0.0)
        # Streams for the same uncommitted range all stay live (none is
        # committed), so the fold sees every attempt — but each at most
        # once: the total is exactly attempts * sum(splits), not more.
        assert total == pytest.approx(attempts * sum(splits))
        # Once ANY attempt commits the range, live streams for it are
        # excluded wholesale and only the committed snapshot counts.

    def test_committed_stream_subsumes_live_deltas(self, tmp_path, config):
        """After a shard commits, its op-log stream must not double into
        the fold: the committed telemetry snapshot is the truth."""
        cache = shard_cache(str(tmp_path))
        run_sharded_campaign(
            config,
            shards=2,
            workers=2,
            executor="workqueue",
            cache=cache,
            telemetry_level="metrics",
            live=True,
        )
        folder = LiveFolder(str(tmp_path))
        snapshot = folder.fold()
        assert snapshot.committed_phones == config.fleet.phone_count
        # Every stream is committed; none contributes live deltas, so
        # folded metrics equal the merged committed snapshots exactly.
        committed = merge_registries(folder._committed_metrics)
        assert (
            snapshot.metrics.counter_totals() == committed.counter_totals()
        )
        for row in snapshot.workers:
            assert row.done


# -- the differential gate ------------------------------------------------------


class TestLiveIsPureObserver:
    def test_live_run_is_bit_identical(self, tmp_path, config, monolithic):
        live_result = run_sharded_campaign(
            config,
            shards=3,
            workers=2,
            executor="workqueue",
            cache=shard_cache(str(tmp_path / "live_run")),
            live=True,
        )
        plain_result = run_sharded_campaign(
            config,
            shards=3,
            workers=2,
            executor="workqueue",
            cache=shard_cache(str(tmp_path / "plain_run")),
        )
        assert canonical(live_result.summary.to_dict()) == canonical(
            plain_result.summary.to_dict()
        )
        assert canonical(live_result.summary.to_dict()) == canonical(
            monolithic.to_dict()
        )
        run_dir = tmp_path / "live_run"
        assert (run_dir / "live").is_dir()
        assert (run_dir / "metrics.prom").is_file()
        assert not (tmp_path / "plain_run" / "live").exists()

    def test_resume_with_live_is_bit_identical(
        self, tmp_path, config, monolithic
    ):
        """The kill-9 differential: lose committed shards, resume with
        --live still on, land on the same bits — with op-log streams
        from both attempts on disk."""
        cache = shard_cache(str(tmp_path))
        run_sharded_campaign(
            config, shards=4, workers=2, executor="workqueue",
            cache=cache, live=True,
        )
        files = sorted(
            name for name in os.listdir(tmp_path) if name.endswith(".json")
        )
        assert len(files) == 4
        for name in files[:2]:
            os.remove(tmp_path / name)
        resumed = run_sharded_campaign(
            config, shards=4, workers=2, executor="workqueue",
            cache=shard_cache(str(tmp_path)), live=True,
        )
        assert resumed.stats.resumed_shards == 2
        assert canonical(resumed.summary.to_dict()) == canonical(
            monolithic.to_dict()
        )
        # The monitor renders the finished run from its durable op-log.
        snapshot = LiveFolder(str(tmp_path)).fold()
        assert snapshot.committed_phones == config.fleet.phone_count
        assert "phones committed" in render_dashboard(snapshot)

    def test_live_pool_backend_matches(self, tmp_path, config, monolithic):
        result = run_sharded_campaign(
            config,
            shards=3,
            workers=2,
            cache=shard_cache(str(tmp_path)),
            live=True,
        )
        assert canonical(result.summary.to_dict()) == canonical(
            monolithic.to_dict()
        )

    def test_live_without_run_dir_is_rejected(self, config):
        with pytest.raises(ValueError, match="durable run directory"):
            run_sharded_campaign(config, shards=2, live=True)

    def test_shard_wire_carries_stream_linkage(self, tmp_path, config):
        from repro.experiments.shard import load_shard_file

        cache = shard_cache(str(tmp_path))
        run_sharded_campaign(
            config, shards=2, workers=2, executor="workqueue",
            cache=cache, live=True,
        )
        for name in sorted(os.listdir(tmp_path)):
            if not name.endswith(".json"):
                continue
            result = load_shard_file(os.path.join(str(tmp_path), name))
            assert result.stream  # v3 wire linkage
            assert result.delta_seq >= 1


# -- prometheus exposition ------------------------------------------------------


class TestPrometheus:
    def test_counter_gauge_histogram_text(self):
        registry = MetricsRegistry()
        registry.counter("sim.events", help="events fired").inc(42.0)
        registry.gauge("queue.depth").set(7.0)
        registry.histogram("lat", bounds=(1.0, 10.0)).observe(0.5)
        registry.histogram("lat", bounds=(1.0, 10.0)).observe(5.0)
        text = prometheus_text(registry)
        assert "# TYPE repro_sim_events_total counter" in text
        assert "repro_sim_events_total 42" in text
        assert "repro_queue_depth 7" in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="10"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_count 2" in text

    def test_labels_escaped_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(1.0, zone="a\"b", name="x")
        text = prometheus_text(registry)
        assert 'name="x"' in text and 'zone="a\\"b"' in text

    def test_extra_gauges_and_atomic_write(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        text = write_prometheus(path, extra_gauges={"live_eta_seconds": 12.5})
        assert os.path.isfile(path)
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == text
        assert "repro_live_eta_seconds 12.5" in text
        assert not [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ]

    def test_snapshot_gauges(self, tmp_path, config):
        cache = shard_cache(str(tmp_path))
        run_sharded_campaign(
            config, shards=2, workers=2, executor="workqueue",
            cache=cache, live=True,
        )
        snapshot = LiveFolder(str(tmp_path)).fold()
        gauges = prom_gauges(snapshot)
        assert gauges["live_phones_committed"] == config.fleet.phone_count
        assert gauges["live_shards_committed"] == 2.0
        text = write_prom_snapshot(str(tmp_path), snapshot)
        assert "repro_live_phones_committed 20" in text
        assert "repro_live_kpi_mtbf_freeze_hours" in text


# -- rendering ------------------------------------------------------------------


class TestRendering:
    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "▁▁"
        line = sparkline([0.0, 1.0, 2.0, 4.0], width=4)
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_dashboard_and_progress_line(self, tmp_path, config):
        cache = shard_cache(str(tmp_path))
        run_sharded_campaign(
            config, shards=2, workers=2, executor="workqueue",
            cache=cache, live=True,
        )
        snapshot = LiveFolder(str(tmp_path)).fold()
        text = render_dashboard(snapshot)
        assert "20/20 phones committed" in text
        assert "MTBF freeze" in text
        assert "executor" in text
        line = progress_line(snapshot)
        assert line.startswith("live: ")
        assert "20/20 phones committed" in line

    def test_empty_fold_renders(self, tmp_path):
        snapshot = LiveFolder(str(tmp_path)).fold()
        assert "0 events" in render_dashboard(snapshot)
        assert progress_line(snapshot)


# -- executor process group in the chrome trace ---------------------------------


class TestExecutorTraceGroup:
    def test_executor_events_get_pid3(self):
        tel = Telemetry(TELEMETRY_TRACE)
        with tel.installed():
            with tel.span("campaign", category="stage"):
                with tel.span(
                    "executor.run", category="executor", track="executor"
                ):
                    tel.instant(
                        "steal split", category="executor", track="executor"
                    )
                    tel.instant(
                        "worker respawn", category="executor", track="executor"
                    )
        trace = chrome_trace(tel.tracer, tel.registry)
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        exec_events = [
            e for e in events if e["pid"] == PID_EXEC and e["ph"] != "M"
        ]
        names = {e["name"] for e in exec_events}
        assert names == {"executor.run", "steal split", "worker respawn"}
        # Executor events render on the wall timeline only: exactly one
        # X event for the span, instants as "i".
        assert sum(1 for e in exec_events if e["ph"] == "X") == 1
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert PID_EXEC in process_names
        assert "executor" in process_names[PID_EXEC]

    def test_no_executor_events_no_pid3(self):
        tel = Telemetry(TELEMETRY_TRACE)
        with tel.installed():
            with tel.span("campaign", category="stage"):
                pass
        trace = chrome_trace(tel.tracer, tel.registry)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {PID_WALL, PID_SIM}

    def test_workqueue_run_emits_executor_span(self, tmp_path, config):
        tel = Telemetry(TELEMETRY_TRACE)
        with tel.installed():
            run_sharded_campaign(
                config,
                shards=2,
                workers=2,
                executor="workqueue",
                cache=shard_cache(str(tmp_path)),
            )
        trace = chrome_trace(tel.tracer, tel.registry)
        assert validate_chrome_trace(trace) == []
        exec_names = {
            e["name"]
            for e in trace["traceEvents"]
            if e["pid"] == PID_EXEC and e["ph"] != "M"
        }
        assert "executor.run" in exec_names
