"""Tests for client/server IPC."""

import pytest

from repro.symbian.active import TRequestStatus
from repro.symbian.errors import (
    KERR_NONE,
    KERR_NOT_SUPPORTED,
    KERR_SERVER_TERMINATED,
    PanicRequest,
)
from repro.symbian.ipc import RMessage, RMessagePtr, RSessionBase, Server
from repro.symbian.panics import USER_70


class TestRMessage:
    def test_complete_sets_status(self):
        status = TRequestStatus()
        status.mark_pending()
        message = RMessage(1, (), status)
        message.complete(KERR_NONE)
        assert message.completed
        assert status.completed

    def test_double_complete_panics_user70(self):
        message = RMessage(1, ())
        message.complete(0)
        with pytest.raises(PanicRequest) as exc:
            message.complete(0)
        assert exc.value.panic_id == USER_70


class TestRMessagePtr:
    def test_null_by_default(self):
        assert RMessagePtr().is_null

    def test_complete_through_null_panics_user70(self):
        with pytest.raises(PanicRequest) as exc:
            RMessagePtr().complete(0)
        assert exc.value.panic_id == USER_70

    def test_complete_clears_pointer(self):
        message = RMessage(1, ())
        ptr = RMessagePtr(message)
        ptr.complete(0)
        assert ptr.is_null
        assert message.completed

    def test_second_complete_after_clear_panics(self):
        ptr = RMessagePtr(RMessage(1, ()))
        ptr.complete(0)
        with pytest.raises(PanicRequest):
            ptr.complete(0)

    def test_set(self):
        ptr = RMessagePtr()
        ptr.set(RMessage(2, ()))
        assert not ptr.is_null


class TestServer:
    def test_handler_dispatch(self):
        server = Server("test")
        got = []
        server.handler(7, lambda m: got.append(m.args))
        session = RSessionBase(server)
        session.send_receive(7, "a", "b")
        assert got == [("a", "b")]

    def test_auto_completion_with_kerr_none(self):
        server = Server("test")
        server.handler(1, lambda m: None)
        message = RSessionBase(server).send_receive(1)
        assert message.completed

    def test_handler_controlled_completion(self):
        server = Server("test")
        server.handler(1, lambda m: m.complete(-6))
        status = TRequestStatus()
        RSessionBase(server).send_receive(1, status=status)
        assert status.value == -6

    def test_unknown_function_not_supported(self):
        server = Server("test")
        status = TRequestStatus()
        RSessionBase(server).send_receive(99, status=status)
        assert status.value == KERR_NOT_SUPPORTED

    def test_manual_pumping(self):
        server = Server("test", auto_serve=False)
        served = []
        server.handler(1, lambda m: served.append(1))
        session = RSessionBase(server)
        session.send_receive(1)
        session.send_receive(1)
        assert server.queue_length == 2
        assert server.serve_next()
        assert server.serve_next()
        assert not server.serve_next()
        assert served == [1, 1]

    def test_terminate_fails_queued_and_future(self):
        server = Server("test", auto_serve=False)
        server.handler(1, lambda m: None)
        session = RSessionBase(server)
        queued = session.send_receive(1)
        server.terminate()
        assert queued.completed
        late_status = TRequestStatus()
        session.send_receive(1, status=late_status)
        assert late_status.value == KERR_SERVER_TERMINATED

    def test_served_counter(self):
        server = Server("test")
        server.handler(1, lambda m: None)
        session = RSessionBase(server)
        session.send_receive(1)
        session.send_receive(1)
        assert server.served == 2

    def test_repr(self):
        assert "alive" in repr(Server("x"))
