"""Test helpers: hand-built datasets for precise analysis tests."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.analysis.ingest import Dataset
from repro.logger.logfile import serialize_record


def dataset_from_records(
    records_by_phone: Dict[str, Iterable[object]], end_time: float
) -> Dataset:
    """Serialize records per phone and ingest them like real logs."""
    lines: Dict[str, List[str]] = {
        phone_id: [serialize_record(record) for record in records]
        for phone_id, records in records_by_phone.items()
    }
    return Dataset.from_lines(lines, end_time=end_time)
