"""Test helpers: hand-built and seeded-random datasets for analysis tests."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List

from repro.analysis.ingest import Dataset
from repro.core.records import (
    ACTIVITY_KINDS,
    BEAT_ALIVE,
    BEAT_LOWBT,
    BEAT_MAOFF,
    BEAT_NONE,
    BEAT_REBOOT,
    PHASE_END,
    PHASE_START,
    POWER_STATES,
    REPORT_KINDS,
    ActivityRecord,
    BootRecord,
    EnrollRecord,
    PanicRecord,
    PowerRecord,
    RunningAppsRecord,
    UserReportRecord,
    wire_level,
    wire_time,
)
from repro.logger.logfile import serialize_record

#: Plausible Symbian panic (category, type, process) triples for
#: generated logs — safe for the wire format (no ``|`` or newlines).
PANIC_SHAPES = [
    ("KERN-EXEC", 3, "phone.exe"),
    ("E32USER-CBase", 46, "mce.exe"),
    ("USER", 11, "calendar.exe"),
    ("ViewSrv", 11, "menu.exe"),
    ("KERN-SVR", 0, "efile.exe"),
    ("EIKON-LISTBOX", 2, "browser.exe"),
]

APP_NAMES = ["menu", "phonebook", "mce", "browser", "camera", "calendar"]


def dataset_from_records(
    records_by_phone: Dict[str, Iterable[object]], end_time: float
) -> Dataset:
    """Serialize records per phone and ingest them like real logs."""
    lines: Dict[str, List[str]] = {
        phone_id: [serialize_record(record) for record in records]
        for phone_id, records in records_by_phone.items()
    }
    return Dataset.from_lines(lines, end_time=end_time)


def random_phone_records(
    rng: random.Random, end_time: float, *, phone_id: str = ""
) -> List[object]:
    """One phone's plausible record stream, drawn from a seeded RNG.

    Covers every record family the analysis consumes — enrollment, boots
    with each beat kind, panics (including zero-gap bursts), paired and
    unpaired activities, running-apps snapshots, power transitions, and
    user failure reports — with wire-quantized timestamps so text and
    structured ingest agree exactly.
    """
    start = wire_time(rng.uniform(0.0, end_time * 0.3))
    records: List[object] = [
        EnrollRecord(start, phone_id or "phone", "S60_2.8", "EU"),
        BootRecord(start, BEAT_NONE, start),
    ]

    # Reboot cycles: each boot reports what the previous cycle left in
    # the beats file; ALIVE boots are the freezes the study counts.
    t = start
    for _ in range(rng.randint(0, 6)):
        last_beat = wire_time(t + rng.uniform(1.0, 40_000.0))
        boot = wire_time(last_beat + rng.uniform(5.0, 90_000.0))
        if boot >= end_time:
            break
        kind = rng.choice([BEAT_ALIVE, BEAT_REBOOT, BEAT_LOWBT, BEAT_MAOFF])
        records.append(BootRecord(boot, kind, last_beat))
        t = boot

    def times(count: int) -> List[float]:
        return [wire_time(rng.uniform(start, end_time)) for _ in range(count)]

    for panic_time in times(rng.randint(0, 5)):
        category, ptype, process = rng.choice(PANIC_SHAPES)
        records.append(PanicRecord(panic_time, category, ptype, process))
        # Occasionally a burst: follow-up panics within a short gap.
        for _ in range(rng.randint(0, 2)):
            panic_time = wire_time(panic_time + rng.uniform(0.0, 30.0))
            category, ptype, process = rng.choice(PANIC_SHAPES)
            records.append(PanicRecord(panic_time, category, ptype, process))

    for act_time in times(rng.randint(0, 4)):
        kind = rng.choice(ACTIVITY_KINDS)
        records.append(ActivityRecord(act_time, kind, PHASE_START))
        if rng.random() < 0.8:  # sometimes a battery pull eats the end
            records.append(
                ActivityRecord(
                    wire_time(act_time + rng.uniform(1.0, 600.0)),
                    kind,
                    PHASE_END,
                )
            )

    for snap_time in times(rng.randint(0, 4)):
        apps = tuple(
            sorted(rng.sample(APP_NAMES, rng.randint(0, len(APP_NAMES))))
        )
        records.append(RunningAppsRecord(snap_time, apps))

    for power_time in times(rng.randint(0, 3)):
        records.append(
            PowerRecord(
                power_time,
                wire_level(rng.uniform(0.0, 1.0)),
                rng.choice(POWER_STATES),
            )
        )

    for report_time in times(rng.randint(0, 3)):
        records.append(UserReportRecord(report_time, rng.choice(REPORT_KINDS)))

    records.sort(key=lambda record: record.time)
    return records


def random_fleet_records(
    seed: int, phones: int, end_time: float
) -> Dict[str, List[object]]:
    """Seeded per-phone record streams for ``phones`` phones."""
    records_by_phone: Dict[str, List[object]] = {}
    for index in range(phones):
        phone_id = f"phone-{index:02d}"
        rng = random.Random((seed << 20) ^ index)
        records_by_phone[phone_id] = random_phone_records(
            rng, end_time, phone_id=phone_id
        )
    return records_by_phone
