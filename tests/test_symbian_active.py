"""Tests for active objects, the active scheduler, and timers."""

import pytest

from repro.core.engine import Simulator
from repro.symbian.active import (
    CActive,
    CActiveScheduler,
    K_REQUEST_PENDING,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    TRequestStatus,
)
from repro.symbian.errors import KERR_GENERAL, Leave, PanicRequest
from repro.symbian.panics import (
    E32USER_CBASE_46,
    E32USER_CBASE_47,
    KERN_EXEC_15,
)
from repro.symbian.timers import RTimer


class RecordingAO(CActive):
    """AO that counts its RunL invocations and optionally re-issues."""

    def __init__(self, scheduler, priority=0, name="", reissue=False, leave_code=None):
        super().__init__(scheduler, priority=priority, name=name)
        self.runs = 0
        self.reissue = reissue
        self.leave_code = leave_code
        self.handled_errors = []

    def issue(self):
        self.i_status.mark_pending()
        self.set_active()

    def run_l(self):
        self.runs += 1
        if self.leave_code is not None:
            raise Leave(self.leave_code)
        if self.reissue:
            self.issue()


class HandlingAO(RecordingAO):
    def run_error(self, code):
        self.handled_errors.append(code)
        return True


class TestTRequestStatus:
    def test_initial_state_not_pending(self):
        status = TRequestStatus()
        assert not status.pending

    def test_mark_pending(self):
        status = TRequestStatus()
        status.mark_pending()
        assert status.pending
        assert status.value == K_REQUEST_PENDING

    def test_complete_sets_value(self):
        status = TRequestStatus()
        status.mark_pending()
        status.complete(-5)
        assert not status.pending
        assert status.value == -5
        assert status.completed

    def test_owned_completion_signals_scheduler(self):
        scheduler = CActiveScheduler()
        ao = RecordingAO(scheduler)
        ao.issue()
        ao.i_status.complete(0)
        assert scheduler.pending_signals == 1


class TestDispatch:
    def test_completed_ao_runs(self):
        scheduler = CActiveScheduler()
        ao = RecordingAO(scheduler)
        ao.issue()
        ao.i_status.complete(0)
        assert scheduler.run_one()
        assert ao.runs == 1
        assert not ao.is_active

    def test_run_one_without_signal_is_false(self):
        assert not CActiveScheduler().run_one()

    def test_priority_order(self):
        scheduler = CActiveScheduler()
        low = RecordingAO(scheduler, priority=PRIORITY_LOW, name="low")
        high = RecordingAO(scheduler, priority=PRIORITY_HIGH, name="high")
        for ao in (low, high):
            ao.issue()
            ao.i_status.complete(0)
        scheduler.run_one()
        assert high.runs == 1
        assert low.runs == 0
        scheduler.run_one()
        assert low.runs == 1

    def test_run_until_idle_drains(self):
        scheduler = CActiveScheduler()
        aos = [RecordingAO(scheduler) for _ in range(5)]
        for ao in aos:
            ao.issue()
            ao.i_status.complete(0)
        count = scheduler.run_until_idle()
        assert count == 5
        assert all(ao.runs == 1 for ao in aos)

    def test_run_until_idle_bounded(self):
        scheduler = CActiveScheduler()
        ao = RecordingAO(scheduler, reissue=True)
        ao.issue()
        ao.i_status.complete(0)

        # Self-reposting with immediate completion loops; the bound must
        # stop it.
        def complete_and_run():
            for _ in range(50):
                if ao.is_active and ao.i_status.pending:
                    ao.i_status.complete(0)
                if not scheduler.run_one():
                    break

        complete_and_run()
        assert ao.runs <= 51

    def test_cancel_clears_active(self):
        scheduler = CActiveScheduler()
        ao = RecordingAO(scheduler)
        ao.issue()
        ao.cancel()
        assert not ao.is_active

    def test_remove_detaches(self):
        scheduler = CActiveScheduler()
        ao = RecordingAO(scheduler)
        scheduler.remove(ao)
        ao.issue()
        ao.i_status.complete(0)
        with pytest.raises(PanicRequest):
            scheduler.run_one()  # signal with no registered AO: stray


class TestErrors:
    def test_stray_signal_panics_46(self):
        scheduler = CActiveScheduler()
        status = TRequestStatus()
        status.attach_scheduler(scheduler)
        status.mark_pending()
        status.complete(0)
        with pytest.raises(PanicRequest) as exc:
            scheduler.run_one()
        assert exc.value.panic_id == E32USER_CBASE_46

    def test_unhandled_leave_panics_47(self):
        scheduler = CActiveScheduler()
        ao = RecordingAO(scheduler, leave_code=KERR_GENERAL)
        ao.issue()
        ao.i_status.complete(0)
        with pytest.raises(PanicRequest) as exc:
            scheduler.run_one()
        assert exc.value.panic_id == E32USER_CBASE_47

    def test_run_error_can_handle_leave(self):
        scheduler = CActiveScheduler()
        ao = HandlingAO(scheduler, leave_code=KERR_GENERAL)
        ao.issue()
        ao.i_status.complete(0)
        scheduler.run_one()
        assert ao.handled_errors == [KERR_GENERAL]

    def test_custom_scheduler_error_hook(self):
        class TolerantScheduler(CActiveScheduler):
            def __init__(self):
                super().__init__()
                self.errors = []

            def error(self, code, ao=None):
                self.errors.append(code)

        scheduler = TolerantScheduler()
        ao = RecordingAO(scheduler, leave_code=-9)
        ao.issue()
        ao.i_status.complete(0)
        scheduler.run_one()
        assert scheduler.errors == [-9]

    def test_base_run_l_is_abstract(self):
        scheduler = CActiveScheduler()
        ao = CActive(scheduler)
        with pytest.raises(NotImplementedError):
            ao.run_l()


class TestRTimer:
    def test_after_completes_status(self):
        sim = Simulator()
        timer = RTimer(sim)
        status = TRequestStatus()
        timer.after(status, 10.0)
        assert status.pending
        sim.run()
        assert status.completed
        assert status.value == 0
        assert sim.now == 10.0

    def test_at_absolute_time(self):
        sim = Simulator()
        timer = RTimer(sim)
        status = TRequestStatus()
        timer.at(status, 25.0)
        sim.run()
        assert sim.now == 25.0
        assert status.completed

    def test_double_after_panics_kern_exec_15(self):
        sim = Simulator()
        timer = RTimer(sim)
        timer.after(TRequestStatus(), 10.0)
        with pytest.raises(PanicRequest) as exc:
            timer.after(TRequestStatus(), 5.0)
        assert exc.value.panic_id == KERN_EXEC_15

    def test_after_then_at_also_panics(self):
        sim = Simulator()
        timer = RTimer(sim)
        timer.after(TRequestStatus(), 10.0)
        with pytest.raises(PanicRequest):
            timer.at(TRequestStatus(), 20.0)

    def test_cancel_completes_with_kerr_cancel(self):
        sim = Simulator()
        timer = RTimer(sim)
        status = TRequestStatus()
        timer.after(status, 10.0)
        timer.cancel()
        assert status.value == -3
        assert not timer.outstanding
        sim.run()  # the cancelled event must not fire anything

    def test_cancel_idle_is_noop(self):
        RTimer(Simulator()).cancel()

    def test_reuse_after_completion(self):
        sim = Simulator()
        timer = RTimer(sim)
        timer.after(TRequestStatus(), 5.0)
        sim.run()
        timer.after(TRequestStatus(), 5.0)  # no panic: previous completed
        sim.run()

    def test_outstanding_flag(self):
        sim = Simulator()
        timer = RTimer(sim)
        assert not timer.outstanding
        timer.after(TRequestStatus(), 5.0)
        assert timer.outstanding
        sim.run()
        assert not timer.outstanding
