"""Tests for the logger daemon and its active objects, run against a
real OS runtime on a single simulated phone."""

import pytest

from repro.core.engine import Simulator
from repro.core.records import (
    ActivityRecord,
    BEAT_ALIVE,
    BEAT_LOWBT,
    BEAT_MAOFF,
    BEAT_NONE,
    BEAT_REBOOT,
    BootRecord,
    EnrollRecord,
    PanicRecord,
    PowerRecord,
    RunningAppsRecord,
)
from repro.logger.daemon import FailureDataLogger, LoggerConfig
from repro.logger.heartbeat import BeatsFile
from repro.logger.logfile import LogStorage
from repro.logger.transfer import CollectionServer
from repro.phone.device import OSRuntime
from repro.symbian.errors import PanicRaised


@pytest.fixture()
def rig():
    sim = Simulator()
    os_runtime = OSRuntime(sim, "phone-test")
    storage = LogStorage("phone-test")
    beats = BeatsFile()
    daemon = FailureDataLogger(sim, os_runtime, storage, beats)
    return sim, os_runtime, storage, beats, daemon


class TestStartup:
    def test_first_boot_records_none_beat(self, rig):
        sim, _os, storage, _beats, daemon = rig
        daemon.start()
        boots = [r for r in storage.records() if isinstance(r, BootRecord)]
        assert len(boots) == 1
        assert boots[0].last_beat_kind == BEAT_NONE

    def test_enroll_record_written_first(self, rig):
        sim, _os, storage, _beats, daemon = rig
        enroll = EnrollRecord(0.0, "phone-test", "8.0", "Italy")
        daemon.start(enroll)
        records = storage.records()
        assert isinstance(records[0], EnrollRecord)
        assert isinstance(records[1], BootRecord)

    def test_initial_runapp_snapshot(self, rig):
        sim, os_runtime, storage, _beats, daemon = rig
        os_runtime.apparch.app_started("Clock")
        daemon.start()
        snaps = [r for r in storage.records() if isinstance(r, RunningAppsRecord)]
        assert snaps[0].apps == ("Clock",)

    def test_double_start_rejected(self, rig):
        _sim, _os, _storage, _beats, daemon = rig
        daemon.start()
        with pytest.raises(ValueError):
            daemon.start()

    def test_heartbeat_started(self, rig):
        _sim, _os, _storage, beats, daemon = rig
        daemon.start()
        assert beats.last_event()[0] == BEAT_ALIVE


class TestPanicCapture:
    def test_panic_recorded_with_category_type_process(self, rig):
        sim, os_runtime, storage, _beats, daemon = rig
        daemon.start()
        process = os_runtime.kernel.create_process("Camera")
        with pytest.raises(PanicRaised):
            os_runtime.kernel.execute(process, lambda: process.space.read(0))
        panics = [r for r in storage.records() if isinstance(r, PanicRecord)]
        assert len(panics) == 1
        assert panics[0].category == "KERN-EXEC"
        assert panics[0].ptype == 3
        assert panics[0].process == "Camera"

    def test_multiple_panics_in_order(self, rig):
        sim, os_runtime, storage, _beats, daemon = rig
        daemon.start()
        for name in ("A", "B"):
            process = os_runtime.kernel.create_process(name)
            with pytest.raises(PanicRaised):
                os_runtime.kernel.execute(process, lambda p=process: p.space.read(0))
        panics = [r for r in storage.records() if isinstance(r, PanicRecord)]
        assert [p.process for p in panics] == ["A", "B"]

    def test_panics_after_detach_not_recorded(self, rig):
        sim, os_runtime, storage, _beats, daemon = rig
        daemon.start()
        daemon.notify_shutdown("user")
        process = os_runtime.kernel.create_process("Late")
        with pytest.raises(PanicRaised):
            os_runtime.kernel.execute(process, lambda: process.space.read(0))
        panics = [r for r in storage.records() if isinstance(r, PanicRecord)]
        assert panics == []


class TestActivityCapture:
    def test_logdb_events_become_activity_records(self, rig):
        sim, os_runtime, storage, _beats, daemon = rig
        daemon.start()
        os_runtime.logdb.add_event(5.0, "voice_call", "start")
        os_runtime.logdb.add_event(65.0, "voice_call", "end")
        acts = [r for r in storage.records() if isinstance(r, ActivityRecord)]
        assert [(a.kind, a.phase) for a in acts] == [
            ("voice_call", "start"),
            ("voice_call", "end"),
        ]

    def test_apps_changed_recorded(self, rig):
        sim, os_runtime, storage, _beats, daemon = rig
        daemon.start()
        os_runtime.apparch.app_started("Messages")
        os_runtime.apparch.app_stopped("Messages")
        snaps = [r for r in storage.records() if isinstance(r, RunningAppsRecord)]
        assert [s.apps for s in snaps] == [(), ("Messages",), ()]

    def test_power_transitions_recorded(self, rig):
        sim, os_runtime, storage, _beats, daemon = rig
        daemon.start()
        os_runtime.sysagent.set_charging(5.0, True)
        os_runtime.sysagent.set_charging(9.0, False)
        power = [r for r in storage.records() if isinstance(r, PowerRecord)]
        assert [p.state for p in power] == ["charging", "discharging"]


class TestShutdownPaths:
    @pytest.mark.parametrize(
        "kind,beat",
        [("user", BEAT_REBOOT), ("self", BEAT_REBOOT), ("lowbt", BEAT_LOWBT)],
    )
    def test_graceful_kinds_write_final_beat(self, rig, kind, beat):
        sim, _os, _storage, beats, daemon = rig
        daemon.start()
        sim.run_until(100.0)
        daemon.notify_shutdown(kind)
        assert beats.last_event() == (beat, 100.0)

    def test_maoff_path(self, rig):
        sim, _os, _storage, beats, daemon = rig
        daemon.start()
        daemon.notify_shutdown("maoff")
        assert beats.last_event()[0] == BEAT_MAOFF

    def test_unknown_kind_rejected(self, rig):
        _sim, _os, _storage, _beats, daemon = rig
        daemon.start()
        with pytest.raises(ValueError):
            daemon.notify_shutdown("meteor")

    def test_halt_leaves_alive_beat(self, rig):
        sim, _os, _storage, beats, daemon = rig
        daemon.start()
        sim.run_until(200.0)
        daemon.halt()
        assert beats.last_event()[0] == BEAT_ALIVE
        assert not daemon.active

    def test_next_boot_sees_previous_beat(self, rig):
        sim, os_runtime, storage, beats, daemon = rig
        daemon.start()
        sim.run_until(100.0)
        daemon.notify_shutdown("user")
        # next power cycle
        sim.run_until(130.0)
        daemon2 = FailureDataLogger(sim, os_runtime, storage, beats)
        daemon2.start()
        boots = [r for r in storage.records() if isinstance(r, BootRecord)]
        assert boots[-1].last_beat_kind == BEAT_REBOOT
        assert boots[-1].off_duration == pytest.approx(30.0)


class TestTransfer:
    def test_sync_ships_only_new_lines(self, rig):
        _sim, _os, storage, _beats, daemon = rig
        daemon.start()
        collector = CollectionServer()
        first = collector.sync(storage)
        assert first == storage.line_count
        assert collector.sync(storage) == 0
        storage.append_record(PanicRecord(1.0, "USER", 11, "X"))
        assert collector.sync(storage) == 1
        assert collector.total_lines == storage.line_count

    def test_dataset_keyed_by_phone(self, rig):
        _sim, _os, storage, _beats, daemon = rig
        daemon.start()
        collector = CollectionServer()
        collector.sync(storage)
        assert collector.phone_ids() == ("phone-test",)
        assert collector.lines_for("phone-test") == storage.lines()

    def test_lines_for_unknown_phone_empty(self):
        assert CollectionServer().lines_for("ghost") == []

    def test_sync_counter(self, rig):
        _sim, _os, storage, _beats, _daemon = rig
        collector = CollectionServer()
        collector.sync(storage)
        collector.sync(storage)
        assert collector.syncs == 2


class TestLoggerConfig:
    def test_defaults(self):
        config = LoggerConfig()
        assert config.heartbeat_period == 60.0
        assert config.heartbeat_mode == "virtual"

    def test_periodic_config_respected(self):
        sim = Simulator()
        os_runtime = OSRuntime(sim, "p")
        daemon = FailureDataLogger(
            sim,
            os_runtime,
            LogStorage("p"),
            BeatsFile(),
            LoggerConfig(heartbeat_period=5.0, heartbeat_mode="periodic"),
        )
        daemon.start()
        sim.run_until(26.0)
        assert daemon.heartbeat.beats.writes == 6  # start + 5 ticks
