"""Structured vs text pipeline equivalence — the fast-path contract.

The collection pipeline has two doors into the analysis: the
``structured`` fast path hands collected record objects straight to
:meth:`Dataset.from_records`, while the ``text`` path serializes every
entry and reparses it (the original on-disk contract).  These tests pin
the invariant that makes the fast path legal:

* line level — for every phone, parsing the serialized log lines yields
  records equal to the structured entries (writers quantize timestamps
  to wire precision at construction, so the round trip is lossless);
* report level — a campaign analysed through either door produces a
  byte-identical summary, with simulation (events fired, ground truth)
  unaffected by the choice;
* the RUNAPPS dedupe knob drops redundant snapshots without changing
  any analysis result (Table 4 included).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.ingest import PIPELINE_STRUCTURED, PIPELINE_TEXT
from repro.core.errors import AnalysisError
from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.summary import CampaignSummary
from repro.logger.daemon import LoggerConfig
from repro.logger.logfile import parse_lines
from repro.phone.fleet import Fleet

SEEDS = [7, 1337, 2005]


def _summary_without_config(result) -> str:
    """Canonical JSON of everything the analysis produced."""
    data = CampaignSummary.from_result(result).to_dict()
    data.pop("config")
    return json.dumps(data, sort_keys=True)


class TestLineLevelEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_serialized_lines_parse_back_to_the_structured_records(self, seed):
        config = CampaignConfig.quick(seed)
        fleet = Fleet(config.fleet, seed=config.seed)
        fleet.run()
        records = fleet.collector.record_dataset()
        lines = fleet.collector.dataset()
        assert sorted(records) == sorted(lines)
        total = 0
        for phone_id, phone_lines in lines.items():
            # Lenient parsing, as ingest does it: freeze-truncated tail
            # lines are dropped by both pipelines.
            reparsed = list(parse_lines(phone_lines))
            assert reparsed == records[phone_id], phone_id
            total += len(reparsed)
        assert total > 100  # the campaign actually logged something


class TestReportLevelEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_summary_is_byte_identical_across_pipelines(self, seed):
        structured = run_campaign(
            CampaignConfig.quick(seed), pipeline=PIPELINE_STRUCTURED
        )
        text = run_campaign(CampaignConfig.quick(seed), pipeline=PIPELINE_TEXT)

        # The simulation half is untouched by the ingest choice.
        assert (
            structured.fleet.sim.events_fired == text.fleet.sim.events_fired
        )
        assert structured.ground_truth == text.ground_truth

        # The analysis half agrees to the byte.
        assert _summary_without_config(structured) == _summary_without_config(
            text
        )

    def test_same_seed_same_pipeline_is_deterministic(self):
        first = run_campaign(CampaignConfig.quick(2005))
        second = run_campaign(CampaignConfig.quick(2005))
        assert first.fleet.sim.events_fired == second.fleet.sim.events_fired
        assert _summary_without_config(first) == _summary_without_config(
            second
        )

    def test_unknown_pipeline_is_rejected(self):
        with pytest.raises(AnalysisError):
            run_campaign(CampaignConfig.quick(7), pipeline="carrier-pigeon")


class TestZeroFaultEquivalence:
    """A disabled fault plan must not perturb a single byte."""

    def test_disabled_plan_summary_is_byte_identical(self):
        from repro.robustness import FaultPlan, run_faulty_campaign

        clean = run_campaign(CampaignConfig.quick(2005))
        outcome = run_faulty_campaign(
            CampaignConfig.quick(2005), plan=FaultPlan.none()
        )
        assert _summary_without_config(outcome.result) == (
            _summary_without_config(clean)
        )
        assert outcome.transfer["retries"] == 0
        assert outcome.injected == {}

    def test_zero_rate_link_machinery_is_byte_identical(self):
        # Stronger: force every batch through the full transfer-batch
        # protocol (delivery, reconciliation) with all rates at zero.
        from repro.logger.transfer import CollectionServer
        from repro.robustness import FaultPlan, FaultyLink

        clean = run_campaign(CampaignConfig.quick(2005))
        collector = CollectionServer(link=FaultyLink(FaultPlan.none()))
        faulty = run_campaign(CampaignConfig.quick(2005), collector=collector)
        assert _summary_without_config(faulty) == _summary_without_config(
            clean
        )
        assert collector.stats.duplicate_entries_dropped == 0
        assert collector.stats.out_of_order_batches == 0


class TestRunappsDedupe:
    def _run(self, seed: int, dedupe: bool):
        config = CampaignConfig.quick(seed)
        config.fleet.logger = LoggerConfig(dedupe_runapps=dedupe)
        return run_campaign(config)

    def test_dedupe_drops_snapshots_but_not_results(self):
        deduped = self._run(11, dedupe=True)
        verbose = self._run(11, dedupe=False)

        count_on = sum(
            len(log.runapps) for log in deduped.dataset.logs.values()
        )
        count_off = sum(
            len(log.runapps) for log in verbose.dataset.logs.values()
        )
        # Boot-time snapshots repeating the previous cycle's final set
        # are the redundancy the knob removes.
        assert count_on < count_off

        # Every analysis output — Table 4 and Figure 6 included — is
        # identical, because an identical snapshot can never change
        # which set is "latest before a panic".
        assert _summary_without_config(deduped) == _summary_without_config(
            verbose
        )
