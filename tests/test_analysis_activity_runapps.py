"""Tests for Table 3 (activity) and Table 4 / Figure 6 (running apps)."""

import pytest

from repro.analysis.activity import (
    ACTIVITY_UNSPECIFIED,
    activity_at,
    activity_intervals,
    compute_activity_table,
)
from repro.analysis.coalescence import HL_FREEZE, HlEvent, coalesce
from repro.analysis.ingest import Dataset
from repro.analysis.runapps import compute_running_apps, running_apps_at
from repro.analysis.shutdowns import compute_shutdown_study
from repro.core.records import (
    ActivityRecord,
    BootRecord,
    PanicRecord,
    RunningAppsRecord,
)
from tests.helpers import dataset_from_records


def boot(time, kind, beat_time):
    return BootRecord(time, kind, beat_time)


class TestActivityIntervals:
    def make_log(self, activities):
        records = [boot(0.0, "NONE", 0.0)] + activities
        dataset = dataset_from_records({"p": records}, end_time=1e6)
        return dataset.logs["p"]

    def test_closed_interval(self):
        log = self.make_log(
            [
                ActivityRecord(100.0, "voice_call", "start"),
                ActivityRecord(200.0, "voice_call", "end"),
            ]
        )
        intervals = activity_intervals(log)
        assert len(intervals["voice_call"]) == 1
        assert intervals["voice_call"][0].start == 100.0
        assert intervals["voice_call"][0].end == 200.0

    def test_unclosed_interval_gets_grace(self):
        log = self.make_log([ActivityRecord(100.0, "voice_call", "start")])
        interval = activity_intervals(log)["voice_call"][0]
        assert interval.end == 700.0  # 600 s grace

    def test_restarted_interval_closes_previous(self):
        log = self.make_log(
            [
                ActivityRecord(100.0, "message", "start"),
                ActivityRecord(5000.0, "message", "start"),
                ActivityRecord(5050.0, "message", "end"),
            ]
        )
        intervals = activity_intervals(log)["message"]
        assert len(intervals) == 2

    def test_orphan_end_ignored(self):
        log = self.make_log([ActivityRecord(100.0, "message", "end")])
        assert activity_intervals(log)["message"] == []

    def test_activity_at(self):
        log = self.make_log(
            [
                ActivityRecord(100.0, "voice_call", "start"),
                ActivityRecord(200.0, "voice_call", "end"),
                ActivityRecord(300.0, "message", "start"),
                ActivityRecord(350.0, "message", "end"),
            ]
        )
        intervals = activity_intervals(log)
        assert activity_at(intervals, 150.0) == "voice_call"
        assert activity_at(intervals, 320.0) == "message"
        assert activity_at(intervals, 250.0) == ACTIVITY_UNSPECIFIED
        assert activity_at(intervals, 100.0) == "voice_call"  # inclusive
        assert activity_at(intervals, 200.0) == "voice_call"

    def test_voice_wins_over_message(self):
        log = self.make_log(
            [
                ActivityRecord(100.0, "message", "start"),
                ActivityRecord(110.0, "voice_call", "start"),
                ActivityRecord(150.0, "voice_call", "end"),
                ActivityRecord(160.0, "message", "end"),
            ]
        )
        assert activity_at(activity_intervals(log), 120.0) == "voice_call"


class TestActivityTable:
    def make_dataset(self):
        records = [
            boot(0.0, "NONE", 0.0),
            ActivityRecord(1000.0, "voice_call", "start"),
            PanicRecord(1050.0, "USER", 11, "Telephone"),
            ActivityRecord(1100.0, "voice_call", "end"),
            PanicRecord(9000.0, "KERN-EXEC", 3, "Camera"),
        ]
        return dataset_from_records({"p": records}, end_time=1e6)

    def test_table_from_explicit_matches(self):
        dataset = self.make_dataset()
        events = [
            HlEvent("p", 1060.0, HL_FREEZE),
            HlEvent("p", 9100.0, HL_FREEZE),
        ]
        result = coalesce(dataset, events, window=300.0)
        study = compute_shutdown_study(dataset)
        table = compute_activity_table(dataset, study, result=result)
        assert table.total_panics == 2
        assert table.cells[("voice_call", "USER")] == pytest.approx(50.0)
        assert table.cells[("unspecified", "KERN-EXEC")] == pytest.approx(50.0)
        assert table.realtime_percent == pytest.approx(50.0)

    def test_voice_only_category_detection(self):
        dataset = self.make_dataset()
        events = [
            HlEvent("p", 1060.0, HL_FREEZE),
            HlEvent("p", 9100.0, HL_FREEZE),
        ]
        result = coalesce(dataset, events, window=300.0)
        study = compute_shutdown_study(dataset)
        table = compute_activity_table(dataset, study, result=result)
        assert "USER" in table.voice_only_categories()
        assert "KERN-EXEC" not in table.voice_only_categories()

    def test_row_totals_sum_to_100(self, quick_campaign):
        table = quick_campaign.report.activity
        if table.total_panics:
            assert sum(table.row_totals.values()) == pytest.approx(100.0)


class TestRunningApps:
    def make_dataset(self):
        records = [
            boot(0.0, "NONE", 0.0),
            RunningAppsRecord(0.0, ()),
            RunningAppsRecord(500.0, ("Messages",)),
            PanicRecord(600.0, "KERN-EXEC", 3, "Messages"),
            RunningAppsRecord(600.0, ()),  # post-panic shrink
            RunningAppsRecord(900.0, ("Clock", "Log")),
            PanicRecord(2000.0, "USER", 11, "Clock"),
        ]
        return dataset_from_records({"p": records}, end_time=1e6)

    def test_running_apps_at_uses_strictly_before(self):
        dataset = self.make_dataset()
        log = dataset.logs["p"]
        assert running_apps_at(log, 600.0) == ("Messages",)
        assert running_apps_at(log, 601.0) == ()
        assert running_apps_at(log, 950.0) == ("Clock", "Log")

    def test_before_any_snapshot_is_empty(self):
        dataset = self.make_dataset()
        assert running_apps_at(dataset.logs["p"], -5.0) == ()

    def test_count_distribution(self):
        dataset = self.make_dataset()
        study = compute_shutdown_study(dataset)
        stats = compute_running_apps(dataset, study)
        assert stats.total_panics == 2
        assert stats.count_distribution[1] == pytest.approx(50.0)
        assert stats.count_distribution[2] == pytest.approx(50.0)
        assert stats.modal_app_count in (1, 2)

    def test_app_totals(self):
        dataset = self.make_dataset()
        study = compute_shutdown_study(dataset)
        stats = compute_running_apps(dataset, study)
        assert stats.app_totals["Messages"] == pytest.approx(50.0)
        assert stats.app_totals["Clock"] == pytest.approx(50.0)

    def test_outcome_classification(self):
        dataset = self.make_dataset()
        study = compute_shutdown_study(dataset)
        events = [HlEvent("p", 650.0, HL_FREEZE)]
        result = coalesce(dataset, events, window=300.0)
        stats = compute_running_apps(dataset, study, result=result)
        keys = set(stats.table)
        assert ("KERN-EXEC", "freeze") in keys
        assert ("USER", "no_hl_event") in keys

    def test_top_apps_sorted(self, quick_campaign):
        stats = quick_campaign.report.runapps
        top = stats.top_apps(5)
        values = [pct for _app, pct in top]
        assert values == sorted(values, reverse=True)

    def test_mode_is_one_on_campaign(self, quick_campaign):
        stats = quick_campaign.report.runapps
        assert stats.modal_app_count == 1
