"""Tests for the preemptive priority thread scheduler."""

import pytest

from repro.core.engine import Simulator
from repro.symbian.threads import (
    STATE_FINISHED,
    ThreadScheduler,
    cpu,
    make_workload,
    sleep,
)


def make_sched(time_slice=0.02):
    sim = Simulator()
    return sim, ThreadScheduler(sim, time_slice=time_slice)


class TestBasicExecution:
    def test_single_thread_runs_to_completion(self):
        sim, sched = make_sched()
        thread = sched.spawn("worker", 0, make_workload(cpu(0.1)))
        sim.run_until(1.0)
        assert thread.state == STATE_FINISHED
        assert thread.cpu_time == pytest.approx(0.1)
        assert thread.finished_at == pytest.approx(0.1)

    def test_multiple_steps(self):
        sim, sched = make_sched()
        thread = sched.spawn(
            "worker", 0, make_workload(cpu(0.05), sleep(0.5), cpu(0.05))
        )
        sim.run_until(2.0)
        assert thread.state == STATE_FINISHED
        assert thread.cpu_time == pytest.approx(0.1)
        assert thread.finished_at == pytest.approx(0.6)

    def test_empty_workload_finishes_immediately(self):
        sim, sched = make_sched()
        thread = sched.spawn("noop", 0, make_workload())
        assert thread.state == STATE_FINISHED

    def test_invalid_step_kind(self):
        sim, sched = make_sched()
        with pytest.raises(ValueError):
            sched.spawn("bad", 0, iter([("think", 1.0)]))

    def test_negative_duration_rejected(self):
        sim, sched = make_sched()
        with pytest.raises(ValueError):
            sched.spawn("bad", 0, make_workload(cpu(-1.0)))

    def test_invalid_time_slice(self):
        with pytest.raises(ValueError):
            ThreadScheduler(Simulator(), time_slice=0.0)


class TestPriorities:
    def test_higher_priority_runs_first(self):
        sim, sched = make_sched()
        low = sched.spawn("low", 0, make_workload(cpu(0.1)))
        high = sched.spawn("high", 10, make_workload(cpu(0.1)))
        sim.run_until(1.0)
        assert high.finished_at < low.finished_at

    def test_wakeup_preempts_lower_priority(self):
        sim, sched = make_sched()
        low = sched.spawn("low", 0, make_workload(cpu(1.0)))
        high = sched.spawn("high", 10, make_workload(sleep(0.3), cpu(0.1)))
        sim.run_until(5.0)
        # High slept, woke at 0.3, preempted low, finished ~0.4.
        assert high.finished_at == pytest.approx(0.4, abs=0.05)
        assert low.finished_at == pytest.approx(1.1, abs=0.05)

    def test_starvation_under_cpu_hog(self):
        sim, sched = make_sched()
        hog = sched.spawn("hog", 10, make_workload(cpu(2.0)))
        victim = sched.spawn("victim", 0, make_workload(cpu(0.01)))
        sim.run_until(1.0)
        assert victim.cpu_time == 0.0  # starved while the hog runs
        sim.run_until(3.0)
        assert victim.state == STATE_FINISHED
        del hog

    def test_round_robin_shares_within_priority(self):
        sim, sched = make_sched(time_slice=0.01)
        a = sched.spawn("a", 0, make_workload(cpu(0.5)))
        b = sched.spawn("b", 0, make_workload(cpu(0.5)))
        sim.run_until(0.5)
        # Both made comparable progress: time slicing interleaves them.
        assert a.cpu_time == pytest.approx(0.25, abs=0.02)
        assert b.cpu_time == pytest.approx(0.25, abs=0.02)

    def test_context_switches_counted(self):
        sim, sched = make_sched(time_slice=0.01)
        sched.spawn("a", 0, make_workload(cpu(0.1)))
        sched.spawn("b", 0, make_workload(cpu(0.1)))
        sim.run_until(1.0)
        # 0.2 s of CPU in 0.01 slices, alternating: ~20 dispatches.
        assert sched.context_switches >= 18


class TestSleepWake:
    def test_sleeping_thread_yields_cpu(self):
        sim, sched = make_sched()
        sleeper = sched.spawn("sleeper", 10, make_workload(sleep(1.0), cpu(0.1)))
        worker = sched.spawn("worker", 0, make_workload(cpu(0.2)))
        sim.run_until(0.5)
        assert worker.state == STATE_FINISHED  # ran while sleeper slept
        sim.run_until(2.0)
        assert sleeper.state == STATE_FINISHED

    def test_total_cpu_conserved(self):
        sim, sched = make_sched(time_slice=0.005)
        threads = [
            sched.spawn(f"t{i}", i % 3, make_workload(cpu(0.05), sleep(0.1), cpu(0.05)))
            for i in range(6)
        ]
        sim.run_until(10.0)
        assert all(t.state == STATE_FINISHED for t in threads)
        total = sum(t.cpu_time for t in threads)
        assert total == pytest.approx(0.6, abs=0.01)

    def test_cpu_time_never_overlaps(self):
        """At most one thread accumulates CPU at any instant: total CPU
        time can never exceed elapsed wall time."""
        sim, sched = make_sched(time_slice=0.01)
        threads = [
            sched.spawn(f"t{i}", 0, make_workload(cpu(1.0))) for i in range(4)
        ]
        sim.run_until(1.0)
        assert sum(t.cpu_time for t in threads) <= 1.0 + 1e-6
