"""Tests for the forum taxonomy and corpus generator."""

import pytest

from repro.forum import taxonomy as T
from repro.forum.corpus import (
    ACTIVITY_TARGET,
    TABLE1_TARGET,
    CorpusConfig,
    generate_corpus,
)


class TestTaxonomy:
    def test_five_failure_types(self):
        assert len(T.FAILURE_TYPES) == 5

    def test_six_recovery_actions(self):
        assert len(T.RECOVERY_ACTIONS) == 6

    def test_severity_mapping(self):
        assert T.severity_for_recovery(T.SERVICE) == T.SEVERITY_HIGH
        assert T.severity_for_recovery(T.REBOOT) == T.SEVERITY_MEDIUM
        assert T.severity_for_recovery(T.BATTERY_REMOVAL) == T.SEVERITY_MEDIUM
        assert T.severity_for_recovery(T.REPEAT) == T.SEVERITY_LOW
        assert T.severity_for_recovery(T.WAIT) == T.SEVERITY_LOW
        assert T.severity_for_recovery(T.UNREPORTED) is None

    def test_unknown_recovery_rejected(self):
        with pytest.raises(ValueError):
            T.severity_for_recovery("prayer")


class TestTable1Target:
    def test_covers_full_grid(self):
        for failure_type in T.FAILURE_TYPES:
            for recovery in T.RECOVERY_ACTIONS:
                assert (failure_type, recovery) in TABLE1_TARGET

    def test_sums_to_one_hundred(self):
        assert sum(TABLE1_TARGET.values()) == pytest.approx(100.0, abs=0.1)

    def test_row_totals_match_paper(self):
        def row(failure_type):
            return sum(
                pct for (ft, _), pct in TABLE1_TARGET.items() if ft == failure_type
            )

        assert row(T.OUTPUT_FAILURE) == pytest.approx(36.3, abs=0.1)
        assert row(T.FREEZE) == pytest.approx(25.3, abs=0.1)
        assert row(T.UNSTABLE_BEHAVIOR) == pytest.approx(18.5, abs=0.1)
        assert row(T.SELF_SHUTDOWN) == pytest.approx(16.9, abs=0.1)
        assert row(T.INPUT_FAILURE) == pytest.approx(3.0, abs=0.1)

    def test_activity_target_sums_to_one_hundred(self):
        assert sum(ACTIVITY_TARGET.values()) == pytest.approx(100.0, abs=0.1)


class TestGeneration:
    def test_failure_report_count(self):
        posts = generate_corpus(CorpusConfig(failure_reports=100), seed=1)
        assert sum(1 for p in posts if p.is_failure_report) == 100

    def test_chatter_ratio(self):
        posts = generate_corpus(
            CorpusConfig(failure_reports=100, chatter_ratio=2.0), seed=1
        )
        assert sum(1 for p in posts if not p.is_failure_report) == 200

    def test_deterministic(self):
        a = generate_corpus(seed=7)
        b = generate_corpus(seed=7)
        assert [p.text for p in a] == [p.text for p in b]

    def test_different_seeds_differ(self):
        a = generate_corpus(seed=7)
        b = generate_corpus(seed=8)
        assert [p.text for p in a] != [p.text for p in b]

    def test_dates_in_study_window(self):
        for post in generate_corpus(seed=2):
            year, month = post.date.split("-")
            assert 2003 <= int(year) <= 2006
            if int(year) == 2006:
                assert int(month) <= 3

    def test_smart_share_near_target(self):
        posts = generate_corpus(CorpusConfig(failure_reports=2000), seed=3)
        failures = [p for p in posts if p.is_failure_report]
        share = sum(1 for p in failures if p.device_class == T.SMART_PHONE) / len(
            failures
        )
        assert share == pytest.approx(0.223, abs=0.03)

    def test_unreported_posts_have_no_recovery_phrase(self):
        posts = generate_corpus(seed=4)
        for post in posts:
            if post.recovery == T.UNREPORTED:
                lower = post.text.lower()
                assert "service center" not in lower
                assert "take the battery out" not in lower

    def test_vendor_matches_model(self):
        for post in generate_corpus(seed=5):
            assert post.vendor.split("-")[0].lower() in post.model.lower().replace(
                "-", " "
            ) or post.model.startswith(post.vendor.split("-")[0])

    def test_chatter_has_no_labels(self):
        for post in generate_corpus(seed=6):
            if not post.is_failure_report:
                assert post.recovery is None
                assert post.activity is None

    def test_posts_mention_model(self):
        for post in generate_corpus(seed=7)[:50]:
            assert post.model.lower() in post.text.lower()
