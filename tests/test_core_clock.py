"""Tests for repro.core.clock."""

import pytest

from repro.core.clock import (
    DAY,
    HOUR,
    MINUTE,
    MONTH,
    SECOND,
    WEEK,
    SimClock,
    format_duration,
    format_instant,
)
from repro.core.errors import SimulationError


class TestConstants:
    def test_second_is_unit(self):
        assert SECOND == 1.0

    def test_minute(self):
        assert MINUTE == 60.0

    def test_hour(self):
        assert HOUR == 3600.0

    def test_day(self):
        assert DAY == 86400.0

    def test_week(self):
        assert WEEK == 7 * DAY

    def test_month_is_mean_gregorian(self):
        assert MONTH == pytest.approx(30.44 * DAY)


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(10.0).now == 10.0

    def test_defaults_to_zero(self):
        assert SimClock().now == 0.0

    def test_advance_forward(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_to_same_time_allowed(self):
        clock = SimClock(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_backwards_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)

    def test_repr_mentions_time(self):
        assert "day 0" in repr(SimClock())


class TestFormatDuration:
    def test_sub_minute_uses_seconds(self):
        assert format_duration(45) == "45.0s"

    def test_zero(self):
        assert format_duration(0) == "0.0s"

    def test_minutes(self):
        assert format_duration(5 * MINUTE) == "00:05:00"

    def test_hours_minutes_seconds(self):
        assert format_duration(2 * HOUR + 3 * MINUTE + 4) == "02:03:04"

    def test_days_prefix(self):
        assert format_duration(2 * DAY + 3 * HOUR + 15 * MINUTE) == "2d 03:15:00"

    def test_negative_duration(self):
        assert format_duration(-45) == "-45.0s"


class TestFormatInstant:
    def test_epoch(self):
        assert format_instant(0.0) == "day 0 00:00:00"

    def test_mid_campaign(self):
        assert format_instant(3 * DAY + HOUR) == "day 3 01:00:00"
