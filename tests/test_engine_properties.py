"""Property tests on the DES engine — the layer everything rests on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Simulator


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=0,
        max_size=200,
    )
)
@settings(max_examples=200, deadline=None)
def test_every_event_fires_exactly_once_in_time_order(times):
    sim = Simulator()
    fired = []
    for index, t in enumerate(times):
        sim.schedule_at(t, lambda i=index: fired.append((sim.now, i)))
    sim.run()
    assert len(fired) == len(times)
    observed_times = [t for t, _i in fired]
    assert observed_times == sorted(observed_times)
    assert {i for _t, i in fired} == set(range(len(times)))
    for fire_time, index in fired:
        assert fire_time == times[index]


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    ),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=100),
)
@settings(max_examples=200, deadline=None)
def test_cancelled_events_never_fire(times, cancel_mask):
    sim = Simulator()
    fired = []
    handles = []
    for index, t in enumerate(times):
        handles.append(sim.schedule_at(t, lambda i=index: fired.append(i)))
    cancelled = set()
    for index, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
        if cancel:
            handle.cancel()
            cancelled.add(index)
    sim.run()
    assert set(fired).isdisjoint(cancelled)
    assert set(fired) | cancelled == set(range(min(len(times), len(times))))


@given(
    splits=st.lists(
        st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=30
    )
)
@settings(max_examples=100, deadline=None)
def test_run_until_in_pieces_equals_run_at_once(splits):
    """Driving the clock in arbitrary increments fires the same events
    in the same order as one big run."""

    def build(sim, trace):
        for i in range(20):
            sim.schedule_at(float(i * 37 % 100), lambda i=i: trace.append(i))

    sim_a = Simulator()
    trace_a = []
    build(sim_a, trace_a)
    sim_a.run_until(1000.0)

    sim_b = Simulator()
    trace_b = []
    build(sim_b, trace_b)
    t = 0.0
    for step in splits:
        t = min(t + step, 1000.0)
        sim_b.run_until(t)
    sim_b.run_until(1000.0)

    assert trace_a == trace_b


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_events_scheduling_events_terminate_in_order(seed):
    """Chains of self-scheduling events preserve global time order."""
    sim = Simulator()
    fired = []

    def chain(depth, base):
        fired.append(sim.now)
        if depth < 5:
            sim.schedule_after(base, chain, depth + 1, base)

    for k in range(1, 4):
        sim.schedule_after(float(seed % 7 + k), chain, 0, float(k))
    sim.run()
    assert fired == sorted(fired)
