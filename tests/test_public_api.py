"""Guard the public API surface: exports exist and stay importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.symbian",
    "repro.symbian.servers",
    "repro.phone",
    "repro.logger",
    "repro.forum",
    "repro.analysis",
    "repro.experiments",
    "repro.robustness",
    "repro.observability",
]

MODULES = [
    "repro.cli",
    "repro.core.clock",
    "repro.core.engine",
    "repro.core.events",
    "repro.core.rand",
    "repro.core.records",
    "repro.core.errors",
    "repro.symbian.panics",
    "repro.symbian.kernel",
    "repro.symbian.memory",
    "repro.symbian.heap",
    "repro.symbian.cleanup",
    "repro.symbian.cobject",
    "repro.symbian.handles",
    "repro.symbian.descriptors",
    "repro.symbian.active",
    "repro.symbian.timers",
    "repro.symbian.threads",
    "repro.symbian.workloads",
    "repro.symbian.ipc",
    "repro.symbian.fileserver",
    "repro.symbian.appfw",
    "repro.symbian.errors",
    "repro.symbian.servers.apparch",
    "repro.symbian.servers.logdb",
    "repro.symbian.servers.sysagent",
    "repro.symbian.servers.rdebug",
    "repro.symbian.servers.viewsrv",
    "repro.symbian.servers.flogger",
    "repro.phone.apps",
    "repro.phone.battery",
    "repro.phone.device",
    "repro.phone.user",
    "repro.phone.faults",
    "repro.phone.profiles",
    "repro.phone.fleet",
    "repro.logger.heartbeat",
    "repro.logger.panic_detector",
    "repro.logger.runapp",
    "repro.logger.log_engine",
    "repro.logger.power",
    "repro.logger.logfile",
    "repro.logger.daemon",
    "repro.logger.transfer",
    "repro.logger.dexc",
    "repro.forum.taxonomy",
    "repro.forum.vocabulary",
    "repro.forum.corpus",
    "repro.forum.classifier",
    "repro.forum.study",
    "repro.analysis.ingest",
    "repro.analysis.shutdowns",
    "repro.analysis.availability",
    "repro.analysis.panics",
    "repro.analysis.bursts",
    "repro.analysis.coalescence",
    "repro.analysis.hl_relationship",
    "repro.analysis.activity",
    "repro.analysis.runapps",
    "repro.analysis.output_failures",
    "repro.analysis.reliability",
    "repro.analysis.variability",
    "repro.analysis.trends",
    "repro.analysis.downtime",
    "repro.analysis.tables",
    "repro.analysis.report",
    "repro.analysis.streaming",
    "repro.experiments.config",
    "repro.experiments.campaign",
    "repro.experiments.paper",
    "repro.experiments.compare",
    "repro.experiments.runner",
    "repro.experiments.cache",
    "repro.experiments.summary",
    "repro.experiments.shard",
    "repro.robustness.plan",
    "repro.robustness.injectors",
    "repro.robustness.experiment",
    "repro.observability.metrics",
    "repro.observability.tracer",
    "repro.observability.telemetry",
    "repro.observability.export",
]


@pytest.mark.parametrize("name", MODULES, ids=lambda n: n)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES, ids=lambda n: n)
def test_package_all_entries_resolve(name):
    package = importlib.import_module(name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{name} should declare __all__"
    for symbol in exported:
        assert hasattr(package, symbol), f"{name}.{symbol} missing"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_every_public_module_has_docstring():
    for name in MODULES:
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"


def test_public_classes_have_docstrings():
    import inspect

    for name in MODULES:
        module = importlib.import_module(name)
        for attr_name, obj in vars(module).items():
            if attr_name.startswith("_"):
                continue
            if inspect.isclass(obj) and obj.__module__ == name:
                assert obj.__doc__, f"{name}.{attr_name} lacks a docstring"
