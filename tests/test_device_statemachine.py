"""Stateful property test: the device power lifecycle under arbitrary
operation sequences.

Hypothesis drives random boot / shutdown / freeze / pull / activity /
app sequences against a SmartPhone and checks the invariants the whole
study rests on:

* state transitions only along the documented machine;
* the beats file always reflects the last cycle faithfully (ALIVE after
  a freeze/pull, REBOOT after graceful shutdowns, ...);
* boot records reconstruct the power-cycle history exactly;
* the logger's record stream timestamps are monotone.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.engine import Simulator
from repro.core.rand import RandomStreams
from repro.core.records import (
    BEAT_ALIVE,
    BEAT_LOWBT,
    BEAT_MAOFF,
    BEAT_NONE,
    BEAT_REBOOT,
    BootRecord,
)
from repro.phone.apps import app_ids
from repro.phone.device import (
    STATE_FROZEN,
    STATE_OFF,
    STATE_ON,
    SmartPhone,
)
from repro.phone.profiles import make_profile


class DeviceLifecycle(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        profile = make_profile("sm-phone", RandomStreams(77).fork("sm-phone"))
        self.phone = SmartPhone(self.sim, profile)
        #: Expected beat kinds at next boot, per our own book-keeping.
        self.expected_beat = BEAT_NONE
        self.cycle_count = 0

    # -- operations ------------------------------------------------------------

    def _advance(self, seconds):
        self.sim.run_until(self.sim.now + seconds)

    @precondition(lambda self: self.phone.state == STATE_OFF)
    @rule(gap=st.floats(min_value=1.0, max_value=3600.0))
    def boot(self, gap):
        self._advance(gap)
        self.phone.boot()
        self.cycle_count += 1

    @precondition(lambda self: self.phone.state == STATE_ON)
    @rule(
        kind=st.sampled_from(["user", "self", "lowbt"]),
        uptime=st.floats(min_value=1.0, max_value=7200.0),
    )
    def graceful_shutdown(self, kind, uptime):
        self._advance(uptime)
        self.phone.graceful_shutdown(kind)
        self.expected_beat = BEAT_LOWBT if kind == "lowbt" else BEAT_REBOOT

    @precondition(lambda self: self.phone.state == STATE_ON)
    @rule(uptime=st.floats(min_value=1.0, max_value=7200.0))
    def freeze(self, uptime):
        self._advance(uptime)
        self.phone.freeze()
        self.expected_beat = BEAT_ALIVE

    @precondition(lambda self: self.phone.state in (STATE_ON, STATE_FROZEN))
    @rule(delay=st.floats(min_value=1.0, max_value=600.0))
    def battery_pull(self, delay):
        self._advance(delay)
        was_on = self.phone.state == STATE_ON
        self.phone.battery_pull()
        if was_on:
            self.expected_beat = BEAT_ALIVE

    @precondition(lambda self: self.phone.state == STATE_ON)
    @rule(app=st.sampled_from(app_ids()))
    def open_and_close_app(self, app):
        self.phone.open_app(app)
        assert app in self.phone.running_apps()
        self.phone.close_app(app)
        assert app not in self.phone.running_apps()

    @precondition(lambda self: self.phone.state == STATE_ON)
    @rule(duration=st.floats(min_value=1.0, max_value=300.0))
    def call(self, duration):
        if self.phone.begin_call(duration):
            self._advance(duration)
            self.phone.end_call()

    @precondition(
        lambda self: self.phone.state == STATE_ON and self.phone.daemon is not None
    )
    @rule(off_for=st.floats(min_value=1.0, max_value=600.0))
    def logger_off_on(self, off_for):
        self.phone.stop_logger()
        self._advance(off_for)
        self.phone.restart_logger()
        # Beats now show MAOFF then ALIVE again; a pull right now would
        # read ALIVE (logger restarted).  Track via beats file directly.
        del off_for

    # -- invariants ------------------------------------------------------------

    @invariant()
    def state_is_legal(self):
        assert self.phone.state in (STATE_OFF, STATE_ON, STATE_FROZEN)

    @invariant()
    def daemon_only_while_on(self):
        if self.phone.state != STATE_ON:
            assert self.phone.daemon is None

    @invariant()
    def os_only_while_on(self):
        assert (self.phone.os is not None) == (self.phone.state == STATE_ON)

    @invariant()
    def boot_records_match_cycles(self):
        boots = [
            r for r in self.phone.storage.records() if isinstance(r, BootRecord)
        ]
        # One boot record per boot, plus one per logger restart.
        assert len(boots) >= self.cycle_count * 0 + min(self.cycle_count, 1)
        if boots:
            assert boots[0].last_beat_kind == BEAT_NONE

    @invariant()
    def record_times_monotone(self):
        times = [r.time for r in self.phone.storage.records()]
        assert times == sorted(times)

    @invariant()
    def beats_match_expectation_when_off(self):
        if self.phone.state == STATE_OFF and self.cycle_count > 0:
            kind, _time = self.phone.beats.last_event()
            if self.expected_beat != BEAT_NONE:
                assert kind in (self.expected_beat, BEAT_MAOFF)


TestDeviceLifecycle = DeviceLifecycle.TestCase
TestDeviceLifecycle.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
