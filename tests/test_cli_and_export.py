"""Tests for the CLI and the disk export/ingest round trip."""

import pytest

from repro.analysis.ingest import Dataset
from repro.analysis.report import build_report
from repro.cli import main
from repro.logger.transfer import CollectionServer, load_lines_from_dir


class TestDiskRoundTrip:
    def test_export_and_reload_identical(self, tmp_path, quick_campaign):
        collector = quick_campaign.fleet.collector
        written = collector.export_to_dir(str(tmp_path))
        assert written == quick_campaign.dataset.phone_count
        reloaded = load_lines_from_dir(str(tmp_path))
        assert reloaded == collector.dataset()

    def test_reloaded_dataset_gives_identical_analysis(
        self, tmp_path, quick_campaign
    ):
        quick_campaign.fleet.collector.export_to_dir(str(tmp_path))
        lines = load_lines_from_dir(str(tmp_path))
        dataset = Dataset.from_lines(
            lines, end_time=quick_campaign.dataset.end_time
        )
        report = build_report(dataset)
        original = quick_campaign.report
        assert report.panic_table.total == original.panic_table.total
        assert report.availability.freeze_count == original.availability.freeze_count
        assert (
            report.availability.self_shutdown_count
            == original.availability.self_shutdown_count
        )

    def test_export_empty_collector(self, tmp_path):
        assert CollectionServer().export_to_dir(str(tmp_path)) == 0
        assert load_lines_from_dir(str(tmp_path)) == {}

    def test_load_ignores_non_log_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text("irrelevant")
        (tmp_path / "phone-00.log").write_text("BOOT|1.000|NONE|0.000\n")
        lines = load_lines_from_dir(str(tmp_path))
        assert list(lines) == ["phone-00"]


class TestCli:
    def test_campaign_headline(self, capsys):
        code = main(
            [
                "campaign",
                "--phones",
                "2",
                "--months",
                "1",
                "--seed",
                "9",
                "--headline-only",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Headline findings" in out
        assert "MTBFr" in out

    def test_campaign_export_then_analyze(self, tmp_path, capsys):
        export_dir = str(tmp_path / "logs")
        assert (
            main(
                [
                    "campaign",
                    "--phones",
                    "2",
                    "--months",
                    "1",
                    "--seed",
                    "9",
                    "--headline-only",
                    "--export",
                    export_dir,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["analyze", export_dir]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Figure 2" in out

    def test_analyze_empty_directory_fails(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 1
        assert "no .log files" in capsys.readouterr().err

    def test_forum_command(self, capsys):
        assert main(["forum", "--reports", "120", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "classifier vs ground truth" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["launch-rockets"])


class TestExtendedReport:
    def test_extended_render_includes_extension_sections(self, quick_campaign):
        text = quick_campaign.report.render_extended()
        for fragment in (
            "Downtime (extension)",
            "Inter-failure time modelling (extension)",
            "Fleet variability (extension)",
            "Temporal structure (extension)",
            "Headline findings",  # the base report is still there
        ):
            assert fragment in text

    def test_cli_extended_flag(self, capsys):
        code = main(
            [
                "campaign",
                "--phones",
                "2",
                "--months",
                "1",
                "--seed",
                "9",
                "--extended",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Downtime (extension)" in out
