"""Tests for the CLI and the disk export/ingest round trip."""

import pytest

from repro.analysis.ingest import Dataset
from repro.analysis.report import build_report
from repro.cli import main
from repro.logger.transfer import CollectionServer, load_lines_from_dir


class TestDiskRoundTrip:
    def test_export_and_reload_identical(self, tmp_path, quick_campaign):
        collector = quick_campaign.fleet.collector
        written = collector.export_to_dir(str(tmp_path))
        assert written == quick_campaign.dataset.phone_count
        reloaded = load_lines_from_dir(str(tmp_path))
        assert reloaded == collector.dataset()

    def test_reloaded_dataset_gives_identical_analysis(
        self, tmp_path, quick_campaign
    ):
        quick_campaign.fleet.collector.export_to_dir(str(tmp_path))
        lines = load_lines_from_dir(str(tmp_path))
        dataset = Dataset.from_lines(
            lines, end_time=quick_campaign.dataset.end_time
        )
        report = build_report(dataset)
        original = quick_campaign.report
        assert report.panic_table.total == original.panic_table.total
        assert report.availability.freeze_count == original.availability.freeze_count
        assert (
            report.availability.self_shutdown_count
            == original.availability.self_shutdown_count
        )

    def test_export_empty_collector(self, tmp_path):
        assert CollectionServer().export_to_dir(str(tmp_path)) == 0
        assert load_lines_from_dir(str(tmp_path)) == {}

    def test_load_ignores_non_log_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text("irrelevant")
        (tmp_path / "phone-00.log").write_text("BOOT|1.000|NONE|0.000\n")
        lines = load_lines_from_dir(str(tmp_path))
        assert list(lines) == ["phone-00"]


class TestCli:
    def test_campaign_headline(self, capsys):
        code = main(
            [
                "campaign",
                "--phones",
                "2",
                "--months",
                "1",
                "--seed",
                "9",
                "--headline-only",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Headline findings" in out
        assert "MTBFr" in out

    def test_campaign_export_then_analyze(self, tmp_path, capsys):
        export_dir = str(tmp_path / "logs")
        assert (
            main(
                [
                    "campaign",
                    "--phones",
                    "2",
                    "--months",
                    "1",
                    "--seed",
                    "9",
                    "--headline-only",
                    "--export",
                    export_dir,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["analyze", export_dir]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Figure 2" in out

    def test_analyze_empty_directory_fails(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 1
        assert "no .log files" in capsys.readouterr().err

    def test_forum_command(self, capsys):
        assert main(["forum", "--reports", "120", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "classifier vs ground truth" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["launch-rockets"])


class TestAnalyzeFlags:
    """`analyze` accepts the same rendering knobs as `campaign`, so an
    exported-then-reanalyzed campaign reproduces the campaign report."""

    CAMPAIGN = ["--phones", "2", "--months", "1", "--seed", "9"]

    def test_analyze_headline_only(self, tmp_path, capsys):
        export_dir = str(tmp_path / "logs")
        assert main(["campaign", *self.CAMPAIGN, "--export", export_dir]) == 0
        capsys.readouterr()
        assert main(["analyze", export_dir, "--headline-only"]) == 0
        out = capsys.readouterr().out
        assert "Headline findings" in out
        assert "Table 2" not in out

    def test_analyze_extended(self, tmp_path, capsys):
        export_dir = str(tmp_path / "logs")
        assert main(["campaign", *self.CAMPAIGN, "--export", export_dir]) == 0
        capsys.readouterr()
        assert main(["analyze", export_dir, "--extended"]) == 0
        assert "Downtime (extension)" in capsys.readouterr().out

    def test_analyze_reproduces_campaign_report(self, tmp_path, capsys):
        """Byte-identical reports from the live campaign and from its
        exported logs (modulo the export trailer line)."""
        export_dir = str(tmp_path / "logs")
        end_time = str(int(1 * 2629800))
        assert (
            main(
                [
                    "campaign",
                    *self.CAMPAIGN,
                    "--export",
                    export_dir,
                ]
            )
            == 0
        )
        campaign_out = capsys.readouterr().out
        campaign_report = campaign_out.split("\nexported ")[0]
        assert main(["analyze", export_dir, "--end-time", end_time]) == 0
        assert capsys.readouterr().out.rstrip("\n") == campaign_report.rstrip(
            "\n"
        )

    def test_analyze_window_changes_coalescence(self, tmp_path, capsys):
        export_dir = str(tmp_path / "logs")
        assert main(["campaign", *self.CAMPAIGN, "--export", export_dir]) == 0
        capsys.readouterr()
        assert main(["analyze", export_dir, "--window", "1"]) == 0
        narrow = capsys.readouterr().out
        assert main(["analyze", export_dir, "--window", "86400"]) == 0
        wide = capsys.readouterr().out
        # A day-long coalescence window merges more low-level events per
        # high-level failure than a zero-length one.
        assert narrow != wide


class TestSweepCommand:
    def test_sweep_prints_per_seed_table(self, capsys):
        code = main(
            [
                "sweep",
                "--phones",
                "2",
                "--months",
                "1",
                "--seeds",
                "5,6",
                "--workers",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Seed" in out
        assert " 5 " in out and " 6 " in out
        assert "MTBFr" in out

    def test_sweep_cache_roundtrip(self, tmp_path, capsys):
        args = [
            "sweep",
            "--phones",
            "2",
            "--months",
            "1",
            "--seeds",
            "5,6",
            "--workers",
            "1",
            "--cache",
            str(tmp_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0 hits, 2 misses" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "2 hits, 0 misses" in second

    def test_sweep_rejects_bad_seeds(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--seeds", "5,banana"])

    def test_faults_gate_passes_on_mild_plan(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "robustness.json"
        code = main(
            [
                "faults",
                "--phones",
                "3",
                "--months",
                "1",
                "--intensities",
                "0.5,1",
                "--max-drift",
                "5",
                "--gate-intensity",
                "1",
                "--output",
                str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "headline drift vs intensity" in out
        assert "OK: worst drift" in out
        report = json.loads(out_path.read_text())
        assert len(report["points"]) == 3  # clean anchor + 2 intensities
        assert report["points"][0]["intensity"] == 0.0

    def test_faults_gate_fails_on_harsh_plan(self, capsys):
        code = main(
            [
                "faults",
                "--phones",
                "3",
                "--months",
                "1",
                "--preset",
                "harsh",
                "--intensities",
                "1",
                "--max-drift",
                "5",
                "--gate-intensity",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "DEGRADED" in out

    def test_faults_json_output_is_strict(self, capsys):
        import json

        code = main(
            ["faults", "--phones", "3", "--months", "1",
             "--intensities", "0.5", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        json.loads(out)  # whole stdout is one strict-JSON document

    def test_faults_rejects_bad_intensities(self):
        with pytest.raises(SystemExit):
            main(["faults", "--intensities", "fast"])
        with pytest.raises(SystemExit):
            main(["faults", "--intensities", "-1"])


class TestExtendedReport:
    def test_extended_render_includes_extension_sections(self, quick_campaign):
        text = quick_campaign.report.render_extended()
        for fragment in (
            "Downtime (extension)",
            "Inter-failure time modelling (extension)",
            "Fleet variability (extension)",
            "Temporal structure (extension)",
            "Headline findings",  # the base report is still there
        ):
            assert fragment in text

    def test_cli_extended_flag(self, capsys):
        code = main(
            [
                "campaign",
                "--phones",
                "2",
                "--months",
                "1",
                "--seed",
                "9",
                "--extended",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Downtime (extension)" in out
