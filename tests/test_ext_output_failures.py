"""Tests for the §7 extension: output-failure capture via user reports."""

import pytest

from repro.analysis.output_failures import (
    compute_output_failures,
    covered_seconds,
)
from repro.core.clock import HOUR
from repro.core.engine import Simulator
from repro.core.rand import RandomStreams
from repro.core.records import (
    BootRecord,
    PanicRecord,
    REPORT_OUTPUT_FAILURE,
    UserReportRecord,
)
from repro.phone.device import SmartPhone
from repro.phone.profiles import make_profile
from repro.phone.user import UserModel
from tests.helpers import dataset_from_records


def boot(time, kind, beat_time):
    return BootRecord(time, kind, beat_time)


class TestReportChannel:
    def make_phone(self):
        sim = Simulator()
        profile = make_profile("phone-00", RandomStreams(3).fork("phone-00"))
        return SmartPhone(sim, profile)

    def test_report_written_while_on(self):
        phone = self.make_phone()
        phone.boot()
        assert phone.report_failure(REPORT_OUTPUT_FAILURE)
        reports = [
            r for r in phone.storage.records() if isinstance(r, UserReportRecord)
        ]
        assert len(reports) == 1
        assert reports[0].kind == REPORT_OUTPUT_FAILURE

    def test_report_rejected_when_off(self):
        phone = self.make_phone()
        assert not phone.report_failure(REPORT_OUTPUT_FAILURE)

    def test_report_rejected_during_maoff(self):
        phone = self.make_phone()
        phone.boot()
        phone.stop_logger()
        assert not phone.report_failure(REPORT_OUTPUT_FAILURE)


class TestUserCompliance:
    def make_rig(self, compliance):
        sim = Simulator()
        streams = RandomStreams(11).fork("phone-00")
        profile = make_profile("phone-00", streams)
        device = SmartPhone(sim, profile)
        user = UserModel(device, streams, campaign_end=30 * 24 * HOUR)
        user.report_compliance_override = compliance
        device.boot()
        return sim, device, user

    def count_reports(self, device):
        return sum(
            1 for r in device.storage.records() if isinstance(r, UserReportRecord)
        )

    def drive(self, sim, user, n=60):
        device = user.device
        for _ in range(n):
            # Reaction reboots power the phone down for several minutes;
            # only perceive while it is on (as a user would).
            while device.state != "on":
                sim.run_until(sim.now + HOUR)
            user.perceive_misbehavior()
            sim.run_until(sim.now + 600.0)

    def test_full_compliance_accounts_for_every_perception(self):
        sim, device, user = self.make_rig(compliance=1.0)
        self.drive(sim, user)
        assert user.reports_filed > 0
        assert user.reaction_reboots > 0
        # Everything perceived either rebooted the phone or was
        # reported; a report can only be lost to a reboot racing its
        # filing delay (rare).
        accounted = (
            user.reports_filed + user.reaction_reboots + user.reports_forgotten
        )
        assert accounted >= 0.9 * user.misbehaviors_perceived
        assert user.reports_forgotten <= 2

    def test_zero_compliance_reports_nothing(self):
        sim, device, user = self.make_rig(compliance=0.0)
        self.drive(sim, user)
        assert user.reports_filed == 0
        assert user.reports_forgotten > 0
        assert self.count_reports(device) == 0

    def test_partial_compliance_in_between(self):
        sim, device, user = self.make_rig(compliance=0.5)
        self.drive(sim, user)
        assert 0 < user.reports_filed
        assert 0 < user.reports_forgotten

    def test_perceive_noop_when_off(self):
        sim, device, user = self.make_rig(compliance=1.0)
        device.graceful_shutdown("user")
        user.perceive_misbehavior()
        assert user.misbehaviors_perceived == 0

    def test_some_misbehaviors_cause_reaction_reboots(self):
        sim, device, user = self.make_rig(compliance=0.0)
        # Drive perceptions; some should power-cycle the phone.
        for _ in range(80):
            if device.state != "on":
                sim.run_until(sim.now + HOUR)
                continue
            user.perceive_misbehavior()
            sim.run_until(sim.now + 1800.0)
        assert user.reaction_reboots > 0


class TestOutputFailureAnalysis:
    def test_counts_and_interval(self):
        records = [
            boot(0.0, "NONE", 0.0),
            UserReportRecord(1000.0, "output_failure"),
            UserReportRecord(5000.0, "output_failure"),
            UserReportRecord(9000.0, "unstable_behavior"),
        ]
        dataset = dataset_from_records({"p": records}, end_time=240 * HOUR)
        stats = compute_output_failures(dataset)
        assert stats.report_count == 3
        assert stats.reports_by_kind == {
            "output_failure": 2,
            "unstable_behavior": 1,
        }
        assert stats.report_interval_days == pytest.approx(240 / 3 / 24)

    def test_panic_correlation(self):
        records = [
            boot(0.0, "NONE", 0.0),
            PanicRecord(900.0, "KERN-EXEC", 3, "Camera"),
            UserReportRecord(1000.0, "output_failure"),  # within 300 s
            UserReportRecord(90000.0, "output_failure"),  # far from any panic
        ]
        dataset = dataset_from_records({"p": records}, end_time=1000 * HOUR)
        stats = compute_output_failures(dataset, window=300.0)
        assert stats.panic_correlated_fraction == pytest.approx(0.5)
        assert stats.chance_fraction < 0.001
        assert stats.correlation_lift > 100

    def test_no_reports(self):
        dataset = dataset_from_records(
            {"p": [boot(0.0, "NONE", 0.0)]}, end_time=HOUR
        )
        stats = compute_output_failures(dataset)
        assert stats.report_count == 0
        assert stats.report_interval_days == float("inf")
        assert stats.panic_correlated_fraction == 0.0

    def test_invalid_window(self):
        dataset = dataset_from_records(
            {"p": [boot(0.0, "NONE", 0.0)]}, end_time=HOUR
        )
        with pytest.raises(ValueError):
            compute_output_failures(dataset, window=0.0)

    def test_covered_seconds_merges_overlaps(self):
        # [50,150] U [100,200] = [50,200] -> 150 s.
        assert covered_seconds([100.0, 150.0], 50.0) == pytest.approx(150.0)
        # Disjoint windows add up.
        assert covered_seconds([100.0, 400.0], 50.0) == pytest.approx(200.0)
        assert covered_seconds([], 50.0) == 0.0


class TestOnRealCampaign:
    def test_reports_collected(self, paper_campaign):
        stats = compute_output_failures(paper_campaign.dataset)
        assert stats.report_count > 30

    def test_reports_are_a_lower_bound(self, paper_campaign):
        truth = paper_campaign.ground_truth
        stats = compute_output_failures(paper_campaign.dataset)
        assert stats.report_count <= truth["misbehaviors_perceived"]
        assert stats.report_count == pytest.approx(truth["user_reports"], abs=2)

    def test_panic_correlation_above_chance(self, paper_campaign):
        """Footnote 5 of the paper: isolated panics relate to output
        failures.  Reports must correlate with panics far above chance."""
        stats = compute_output_failures(paper_campaign.dataset)
        assert stats.correlation_lift > 10.0
