"""Property tests for the streaming accumulators (:mod:`repro.analysis.streaming`).

The shard pipeline is only sound if accumulator merge behaves like a
commutative monoid over disjoint phone sets *and* merging per-phone
singletons reproduces the batch computation exactly.  These tests drive
every section accumulator and :class:`CampaignAccumulator` with seeded
random record streams (:func:`tests.helpers.random_fleet_records`) and
check each algebraic law against full ``to_dict`` payloads.
"""

from __future__ import annotations

import functools
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import build_report
from repro.analysis.streaming import (
    SECTION_ACCUMULATORS,
    CampaignAccumulator,
    PhoneAccumulator,
)
from repro.core.errors import AnalysisError
from tests.helpers import dataset_from_records, random_fleet_records

END_TIME = 30 * 24 * 3600.0

seeds = st.integers(min_value=0, max_value=2**32 - 1)
phone_counts = st.integers(min_value=1, max_value=5)


def build_accumulators(seed: int, phones: int):
    """The full-fleet accumulator plus one singleton per phone."""
    records = random_fleet_records(seed, phones, END_TIME)
    full = CampaignAccumulator.from_dataset(
        dataset_from_records(records, END_TIME)
    )
    singletons = [
        CampaignAccumulator.from_dataset(
            dataset_from_records({phone_id: phone_records}, END_TIME)
        )
        for phone_id, phone_records in records.items()
    ]
    return records, full, singletons


@given(seed=seeds, phones=phone_counts)
@settings(max_examples=25, deadline=None)
def test_merge_of_singletons_equals_batch(seed, phones):
    """Folding per-phone singletons in a random order reproduces the
    batch accumulator state *and* the batch report, bit-identically."""
    records, full, singletons = build_accumulators(seed, phones)
    random.Random(seed ^ 0xA5A5).shuffle(singletons)
    merged = functools.reduce(
        lambda a, b: a.merge(b), singletons, CampaignAccumulator(END_TIME)
    )
    assert merged == full
    assert merged.to_dict() == full.to_dict()
    batch = build_report(dataset_from_records(records, END_TIME)).to_dict()
    assert merged.sections() == batch


@given(seed=seeds, phones=st.integers(min_value=3, max_value=6))
@settings(max_examples=25, deadline=None)
def test_merge_is_associative(seed, phones):
    _records, _full, parts = build_accumulators(seed, phones)
    a, b = parts[0], parts[1]
    c = functools.reduce(lambda x, y: x.merge(y), parts[2:])
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left == right
    assert left.to_dict() == right.to_dict()


@given(seed=seeds, phones=st.integers(min_value=2, max_value=5))
@settings(max_examples=25, deadline=None)
def test_merge_is_commutative(seed, phones):
    _records, _full, parts = build_accumulators(seed, phones)
    split = len(parts) // 2
    a = functools.reduce(lambda x, y: x.merge(y), parts[:split] or [CampaignAccumulator(END_TIME)])
    b = functools.reduce(lambda x, y: x.merge(y), parts[split:])
    forward = a.merge(b)
    backward = b.merge(a)
    assert forward == backward
    assert forward.sections() == backward.sections()


@given(seed=seeds, phones=phone_counts)
@settings(max_examples=25, deadline=None)
def test_empty_accumulator_is_merge_identity(seed, phones):
    _records, full, _parts = build_accumulators(seed, phones)
    empty = CampaignAccumulator(END_TIME)
    assert empty.merge(full) == full
    assert full.merge(empty) == full
    assert empty.merge(empty).phone_count == 0


@given(seed=seeds, phones=phone_counts)
@settings(max_examples=25, deadline=None)
def test_wire_round_trip_preserves_state_and_sections(seed, phones):
    """to_dict -> JSON -> from_dict is lossless, even for finalize."""
    _records, full, _parts = build_accumulators(seed, phones)
    revived = CampaignAccumulator.from_dict(
        json.loads(json.dumps(full.to_dict()))
    )
    assert revived == full
    assert revived.sections() == full.sections()


@given(seed=seeds, phones=phone_counts)
@settings(max_examples=10, deadline=None)
def test_merge_rejects_overlapping_phones(seed, phones):
    _records, full, parts = build_accumulators(seed, phones)
    with pytest.raises(AnalysisError, match="double-count"):
        full.merge(parts[0])


def test_merge_rejects_mismatched_knobs():
    base = CampaignAccumulator(END_TIME)
    for other in (
        CampaignAccumulator(END_TIME + 1.0),
        CampaignAccumulator(END_TIME, window=123.0),
        CampaignAccumulator(END_TIME, gap=7.0),
        CampaignAccumulator(END_TIME, threshold=9.0),
    ):
        with pytest.raises(AnalysisError, match="cannot merge"):
            base.merge(other)


def test_rejects_nonpositive_knobs():
    with pytest.raises(AnalysisError):
        CampaignAccumulator(0.0)
    with pytest.raises(AnalysisError):
        CampaignAccumulator(END_TIME, window=0.0)
    with pytest.raises(AnalysisError):
        CampaignAccumulator(END_TIME, gap=-1.0)


def test_from_dict_rejects_unknown_format_version():
    payload = CampaignAccumulator(END_TIME).to_dict()
    payload["format_version"] = 999
    with pytest.raises(AnalysisError, match="format version"):
        CampaignAccumulator.from_dict(payload)


# -- section-level laws, one parametrized pass per accumulator class ----------


@pytest.mark.parametrize("name", sorted(SECTION_ACCUMULATORS), ids=str)
@given(seed=seeds, phones=st.integers(min_value=2, max_value=4))
@settings(max_examples=15, deadline=None)
def test_section_accumulator_laws(name, seed, phones):
    """Each section accumulator is itself a mergeable monoid whose wire
    format round-trips and whose merge refuses phone overlap."""
    cls = SECTION_ACCUMULATORS[name]
    _records, full, parts = build_accumulators(seed, phones)
    section_full = full.accumulators[name]
    section_parts = [part.accumulators[name] for part in parts]

    random.Random(seed ^ 0x0F0F).shuffle(section_parts)
    merged = functools.reduce(lambda a, b: a.merge(b), section_parts, cls())
    assert merged == section_full
    assert merged.to_dict() == section_full.to_dict()

    a, rest = section_parts[0], section_parts[1:]
    b = functools.reduce(lambda x, y: x.merge(y), rest)
    assert a.merge(b) == b.merge(a)
    assert cls().merge(merged) == merged

    revived = cls.from_dict(json.loads(json.dumps(merged.to_dict())))
    assert type(revived) is cls
    assert revived.phones.keys() == merged.phones.keys()

    with pytest.raises(AnalysisError, match="double-count"):
        merged.merge(section_parts[0])


def test_section_accumulators_reject_cross_type_merge():
    classes = sorted(SECTION_ACCUMULATORS.items())
    (_na, cls_a), (_nb, cls_b) = classes[0], classes[1]
    with pytest.raises(AnalysisError, match="cannot merge"):
        cls_a().merge(cls_b())


def test_add_phone_rejects_duplicate():
    acc = PhoneAccumulator()
    acc.add_phone("phone-00", {"x": 1})
    with pytest.raises(AnalysisError, match="double-count"):
        acc.add_phone("phone-00", {"x": 2})
