"""Batch-drain fast-path tests for the calendar-wheel engine.

The engine drains one calendar tick at a time into a sorted run batch
(see the ``core.engine`` module docstring).  These tests pin the batch
layout's observable behaviour — ordering, cancellation, re-entrant
scheduling, tick boundaries — against the pure-heap reference engine
(``tick_width=0``), including on seeded random workloads.
"""

import random

import pytest

from repro.core.engine import DEFAULT_TICK_WIDTH, Simulator
from repro.core.errors import SimulationError

#: Small tick so short workloads span many buckets.
NARROW_TICK = 8.0


# ---------------------------------------------------------------------------
# Same-timestamp ordering: priority, then scheduling sequence.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tick_width", [0.0, NARROW_TICK, DEFAULT_TICK_WIDTH])
def test_same_timestamp_batch_fires_in_priority_then_seq_order(tick_width):
    sim = Simulator(tick_width=tick_width)
    fired = []
    # Scheduled out of priority order on purpose; seq is insertion order.
    sim.schedule_at(10.0, lambda: fired.append("p0-first"), priority=0)
    sim.schedule_at(10.0, lambda: fired.append("p-5"), priority=-5)
    sim.schedule_at(10.0, lambda: fired.append("p0-second"), priority=0)
    sim.schedule_at(10.0, lambda: fired.append("p3"), priority=3)
    # A later event in a future bucket must not leak into the batch.
    sim.schedule_at(10.0 + 3 * NARROW_TICK, lambda: fired.append("later"))
    sim.run_until(10.0)
    assert fired == ["p-5", "p0-first", "p0-second", "p3"]
    sim.run_until(1000.0)
    assert fired[-1] == "later"


def test_batch_interleaves_with_heap_entries_in_total_order():
    # Entries land in the heap when scheduled into the active tick and
    # in the wheel otherwise; the drain must merge both sides by
    # (time, priority, seq) regardless of residency.
    sim = Simulator(tick_width=NARROW_TICK)
    fired = []
    sim.schedule_at(2.0, lambda: fired.append("early"))  # active tick -> heap
    sim.schedule_at(NARROW_TICK + 1.0, lambda: fired.append("wheel-1"))
    sim.schedule_at(NARROW_TICK + 3.0, lambda: fired.append("wheel-2"))

    def schedule_into_next_tick():
        # From inside the drain of tick 0, schedule into tick 1: the
        # entry goes to the wheel and must merge between wheel-1/2.
        sim.schedule_at(NARROW_TICK + 2.0, lambda: fired.append("mid"))

    sim.schedule_at(3.0, schedule_into_next_tick)
    sim.run_until(5 * NARROW_TICK)
    assert fired == ["early", "wheel-1", "mid", "wheel-2"]


# ---------------------------------------------------------------------------
# Cancellation inside a drained batch.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tick_width", [0.0, NARROW_TICK, DEFAULT_TICK_WIDTH])
def test_cancel_later_event_from_inside_drained_batch(tick_width):
    sim = Simulator(tick_width=tick_width)
    fired = []
    handles = {}

    def first():
        fired.append("first")
        handles["victim"].cancel()
        # Residency invariant: the cancelled entry is still physically
        # queued but pending_count is exact mid-drain.
        assert sim.pending_count() == 1  # only "survivor" remains live

    sim.schedule_at(10.0, first)
    handles["victim"] = sim.schedule_at(10.0, lambda: fired.append("victim"))
    sim.schedule_at(10.0, lambda: fired.append("survivor"))
    sim.run_until(20.0)
    assert fired == ["first", "survivor"]
    assert sim.events_cancelled == 1
    assert sim.pending_count() == 0


def test_cancel_own_batch_tail_then_compact_mid_drain():
    # A callback cancels everything behind it in the same batch and
    # forces a compaction; the drain loop must survive the run batch
    # being filtered under its feet.
    sim = Simulator(tick_width=NARROW_TICK)
    fired = []
    tail = []

    def head():
        fired.append("head")
        for handle in tail:
            handle.cancel()
        sim._compact()

    # Times inside tick 1, so the entries travel wheel -> run batch
    # (tick-0 times would sit in the heap and test the other side).
    t = NARROW_TICK + 4.0
    sim.schedule_at(t, head)
    for i in range(5):
        tail.append(sim.schedule_at(t, lambda i=i: fired.append(i)))
    sim.schedule_at(t + 1.0, lambda: fired.append("after"))
    sim.run_until(2 * NARROW_TICK)
    assert fired == ["head", "after"]
    assert sim.pending_count() == 0
    assert sim.compactions >= 1


# ---------------------------------------------------------------------------
# Re-entrant schedule_at(now) from a draining callback.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tick_width", [0.0, NARROW_TICK, DEFAULT_TICK_WIDTH])
def test_reentrant_schedule_at_now_merges_in_key_order(tick_width):
    sim = Simulator(tick_width=tick_width)
    fired = []

    def opener():
        fired.append("opener")
        # Same timestamp, better priority than the queued remainder:
        # must fire before them.
        sim.schedule_at(sim.now, lambda: fired.append("urgent"), priority=-1)
        # Same timestamp, default priority: newest seq, fires last.
        sim.schedule_at(sim.now, lambda: fired.append("appended"))

    sim.schedule_at(10.0, opener)
    sim.schedule_at(10.0, lambda: fired.append("queued-1"))
    sim.schedule_at(10.0, lambda: fired.append("queued-2"))
    sim.run_until(10.0)
    assert fired == ["opener", "urgent", "queued-1", "queued-2", "appended"]


def test_reentrant_chain_at_same_instant_drains_to_completion():
    sim = Simulator(tick_width=NARROW_TICK)
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 25:
            sim.schedule_at(sim.now, chain, depth + 1)

    sim.schedule_at(3.0, chain, 0)
    sim.run_until(3.0)
    assert fired == list(range(26))
    assert sim.now == 3.0
    assert sim.pending_count() == 0


# ---------------------------------------------------------------------------
# Tick boundaries and bucket bounds.
# ---------------------------------------------------------------------------


def test_event_exactly_on_tick_boundary_fires_at_its_time():
    sim = Simulator(tick_width=10.0)
    fired = []
    sim.schedule_at(10.0, lambda: fired.append(sim.now))
    sim.run_until(9.999)
    assert fired == []
    sim.run_until(10.0)  # final-tick limit is inclusive
    assert fired == [10.0]


def test_awkward_tick_width_float_boundaries():
    # 0.1 is not exactly representable; the bucket-index guards must
    # keep b*tick <= time < (b+1)*tick using the same products the
    # drain limits use, so no event is skipped or drained early.
    sim = Simulator(tick_width=0.1)
    fired = []
    times = [i * 0.1 for i in range(200)]
    for t in times:
        sim.schedule_at(t, lambda t=t: fired.append(t))
    sim.run_until(times[-1])
    assert fired == times


def test_sparse_ticks_are_skipped_not_walked():
    sim = Simulator(tick_width=1.0)
    fired = []
    sim.schedule_at(0.5, lambda: fired.append("near"))
    sim.schedule_at(10_000_000.5, lambda: fired.append("far"))
    # If the drain walked every empty tick this would take ~10M
    # iterations; the tick-skip makes it two.
    sim.run_until(10_000_001.0)
    assert fired == ["near", "far"]


def test_negative_tick_width_rejected():
    with pytest.raises(SimulationError):
        Simulator(tick_width=-1.0)


def test_peek_and_step_agree_after_wheel_population():
    # step/peek_time fold the wheel back into the heap; the global
    # minimum must be the same event the run loop would pick.
    sim = Simulator(tick_width=NARROW_TICK)
    fired = []
    sim.schedule_at(3 * NARROW_TICK + 1.0, lambda: fired.append("far"))
    sim.schedule_at(1.0, lambda: fired.append("near"))
    assert sim.peek_time() == 1.0
    assert sim.step() is True
    assert fired == ["near"]
    assert sim.peek_time() == 3 * NARROW_TICK + 1.0
    sim.run()
    assert fired == ["near", "far"]


# ---------------------------------------------------------------------------
# Differential pinning against the pure-heap reference engine.
# ---------------------------------------------------------------------------


def _run_seeded_workload(sim, seed):
    """Seeded random workload with re-entrant scheduling and cancels.

    Returns the fire trace.  Both engines replay the identical seed;
    any ordering divergence shows up as a trace mismatch (the RNG is
    consumed inside callbacks, so even the *first* divergence is
    caught, not averaged away).
    """
    rng = random.Random(seed)
    trace = []
    handles = []

    def fire(label):
        trace.append((sim.now, label))
        roll = rng.random()
        if roll < 0.25:
            # Re-entrant same-instant schedule.
            handles.append(
                sim.schedule_at(
                    sim.now,
                    fire,
                    f"{label}.now",
                    priority=rng.randint(-2, 2),
                )
            )
        elif roll < 0.55:
            # Forward schedule spanning several ticks.
            handles.append(
                sim.schedule_after(
                    rng.uniform(0.0, 4 * NARROW_TICK),
                    fire,
                    f"{label}.later",
                    priority=rng.randint(-2, 2),
                )
            )
        elif roll < 0.7 and handles:
            rng.choice(handles).cancel()

    for i in range(60):
        handles.append(
            sim.schedule_at(
                rng.uniform(0.0, 6 * NARROW_TICK),
                fire,
                f"seed{i}",
                priority=rng.randint(-2, 2),
            )
        )
    # Drain in several segments so run_until stop/resume mid-workload
    # is part of the differential surface.
    horizon = 0.0
    while sim.pending_count():
        horizon += rng.uniform(0.5, 3 * NARROW_TICK)
        sim.run_until(horizon)
    return trace


@pytest.mark.parametrize("seed", [2005, 77, 9, 424242])
def test_batched_engine_matches_pure_heap_reference(seed):
    reference = Simulator(tick_width=0.0)
    ref_trace = _run_seeded_workload(reference, seed)
    for tick_width in (NARROW_TICK, DEFAULT_TICK_WIDTH):
        candidate = Simulator(tick_width=tick_width)
        trace = _run_seeded_workload(candidate, seed)
        assert trace == ref_trace, f"divergence at tick_width={tick_width}"
        assert candidate.events_fired == reference.events_fired
        assert candidate.events_scheduled == reference.events_scheduled
        assert candidate.events_cancelled == reference.events_cancelled
        assert candidate.pending_count() == 0
        assert candidate.now == pytest.approx(reference.now)
