"""Tests for the seeded random streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rand import RandomStreams, Stream, derive_seed, empirical_cdf


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_differs_by_name(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_differs_by_root(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_known_value_is_stable(self):
        # Pin one derived value: if the derivation ever changes, every
        # calibrated campaign silently changes with it.
        assert derive_seed(0, "") == derive_seed(0, "")
        assert isinstance(derive_seed(0, ""), int)


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(7)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_independent_of_creation_order(self):
        one = RandomStreams(7)
        a_first = one.stream("a").random()
        two = RandomStreams(7)
        two.stream("b").random()  # interleave another stream
        a_second = two.stream("a").random()
        assert a_first == a_second

    def test_fork_is_deterministic(self):
        x = RandomStreams(7).fork("phone-01").stream("user").random()
        y = RandomStreams(7).fork("phone-01").stream("user").random()
        assert x == y

    def test_fork_differs_from_parent(self):
        parent = RandomStreams(7)
        child = parent.fork("phone-01")
        assert parent.stream("user").random() != child.stream("user").random()

    def test_repr_lists_streams(self):
        streams = RandomStreams(7)
        streams.stream("beta")
        assert "beta" in repr(streams)


class TestDistributions:
    def setup_method(self):
        self.stream = Stream(1234)

    def test_uniform_within_bounds(self):
        for _ in range(100):
            value = self.stream.uniform(2.0, 3.0)
            assert 2.0 <= value < 3.0001

    def test_randint_inclusive(self):
        values = {self.stream.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_bernoulli_extremes(self):
        assert not self.stream.bernoulli(0.0)
        assert self.stream.bernoulli(1.0)

    def test_exponential_mean(self):
        n = 20_000
        mean = sum(self.stream.exponential(10.0) for _ in range(n)) / n
        assert mean == pytest.approx(10.0, rel=0.05)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            self.stream.exponential(0.0)

    def test_lognormal_median(self):
        values = sorted(self.stream.lognormal_median(80.0, 0.6) for _ in range(5001))
        assert values[len(values) // 2] == pytest.approx(80.0, rel=0.1)

    def test_lognormal_rejects_bad_median(self):
        with pytest.raises(ValueError):
            self.stream.lognormal_median(0.0, 1.0)

    def test_normal_truncation(self):
        for _ in range(200):
            assert self.stream.normal(0.0, 5.0, minimum=0.0) >= 0.0

    def test_choice(self):
        assert self.stream.choice([1]) == 1

    def test_sample_distinct(self):
        sample = self.stream.sample(range(10), 5)
        assert len(set(sample)) == 5

    def test_shuffled_preserves_elements(self):
        items = list(range(20))
        shuffled = self.stream.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # original untouched

    def test_geometric_support(self):
        for _ in range(100):
            value = self.stream.geometric(0.5)
            assert 1 <= value <= 64

    def test_geometric_p_one_always_one(self):
        assert all(self.stream.geometric(1.0) == 1 for _ in range(20))

    def test_geometric_rejects_bad_p(self):
        with pytest.raises(ValueError):
            self.stream.geometric(0.0)


class TestWeightedChoice:
    def setup_method(self):
        self.stream = Stream(99)

    def test_single_key(self):
        assert self.stream.weighted_choice({"only": 1.0}) == "only"

    def test_zero_weight_never_chosen(self):
        for _ in range(500):
            assert self.stream.weighted_choice({"a": 1.0, "b": 0.0}) == "a"

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError):
            self.stream.weighted_choice({})

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            self.stream.weighted_choice({"a": 0.0})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            # Force enough draws that the negative key gets visited.
            for _ in range(100):
                self.stream.weighted_choice({"a": 1.0, "b": -1.0})

    def test_frequencies_roughly_match_weights(self):
        counts = {"a": 0, "b": 0}
        n = 20_000
        for _ in range(n):
            counts[self.stream.weighted_choice({"a": 3.0, "b": 1.0})] += 1
        assert counts["a"] / n == pytest.approx(0.75, abs=0.02)


class TestEmpiricalCdf:
    def test_sorted_output(self):
        values, cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert values == [1.0, 2.0, 3.0]
        assert cdf == [pytest.approx(1 / 3), pytest.approx(2 / 3), pytest.approx(1.0)]


@given(seed=st.integers(min_value=0, max_value=2**31), name=st.text(max_size=20))
@settings(max_examples=50, deadline=None)
def test_derive_seed_in_64_bit_range(seed, name):
    value = derive_seed(seed, name)
    assert 0 <= value < 2**64


@given(
    weights=st.dictionaries(
        st.text(min_size=1, max_size=5),
        st.floats(min_value=0.001, max_value=100.0),
        min_size=1,
        max_size=8,
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100, deadline=None)
def test_weighted_choice_always_returns_a_key(weights, seed):
    stream = Stream(seed)
    assert stream.weighted_choice(weights) in weights
