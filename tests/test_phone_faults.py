"""Tests for the fault model: every injector raises its panic, outcomes
follow the policy, silent failures fire."""

import pytest

from repro.core.clock import HOUR
from repro.core.engine import Simulator
from repro.core.rand import RandomStreams
from repro.core.records import PanicRecord
from repro.phone.device import STATE_OFF, STATE_ON, SmartPhone
from repro.phone.faults import (
    CONTEXT_BACKGROUND,
    CONTEXT_MESSAGE,
    CONTEXT_VOICE,
    FaultModel,
    FaultModelConfig,
    _build_injector_table,
)
from repro.phone.profiles import make_profile
from repro.symbian import panics as P
from repro.symbian.panics import PanicId


def make_rig(config=None, seed=3):
    sim = Simulator()
    streams = RandomStreams(seed).fork("phone-00")
    profile = make_profile("phone-00", streams)
    device = SmartPhone(sim, profile)
    config = config or FaultModelConfig(
        # Quiet background processes: tests drive injection directly.
        background_burst_rate=0.0,
        silent_freeze_rate=0.0,
        silent_shutdown_rate=0.0,
        per_call_burst_prob=0.0,
        per_message_burst_prob=0.0,
    )
    model = FaultModel(device, streams, config)
    device.boot()
    return sim, device, model


def recorded_panics(device):
    return [r for r in device.storage.records() if isinstance(r, PanicRecord)]


class TestInjectors:
    """Every Table 2 panic type has an injector that actually raises it
    through the substrate."""

    @pytest.mark.parametrize(
        "panic_id",
        sorted(_build_injector_table()),
        ids=lambda pid: f"{pid.category}-{pid.ptype}",
    )
    def test_injector_raises_its_panic(self, panic_id):
        sim, device, model = make_rig()
        # Give non-critical injectors a victim app.
        device.open_app("Camera")
        victim = model._pick_victim(panic_id, CONTEXT_BACKGROUND)
        injector = model._injectors[panic_id]
        from repro.symbian.errors import PanicRaised

        with pytest.raises(PanicRaised) as exc:
            injector(model, victim)
        assert exc.value.panic_id == panic_id

    def test_inject_one_records_via_logger(self):
        sim, device, model = make_rig()
        device.open_app("Camera")
        raised = model._inject_one(CONTEXT_BACKGROUND)
        assert isinstance(raised, PanicId)
        panics = recorded_panics(device)
        assert len(panics) == 1
        assert panics[0].category == raised.category

    def test_inject_when_off_returns_none(self):
        sim, device, model = make_rig()
        device.graceful_shutdown("user")
        assert model._inject_one(CONTEXT_BACKGROUND) is None


class TestVictimSelection:
    def test_phone_app_defect_hits_critical_phone_process(self):
        sim, device, model = make_rig()
        victim = model._pick_victim(P.PHONE_APP_2, CONTEXT_MESSAGE)
        assert victim is device.os.phone_process
        assert victim.critical

    def test_msgs_defect_hits_critical_msg_server(self):
        sim, device, model = make_rig()
        victim = model._pick_victim(P.MSGS_CLIENT_3, CONTEXT_MESSAGE)
        assert victim is device.os.msg_server_process

    def test_voice_user_panic_hits_telephone(self):
        sim, device, model = make_rig()
        device.begin_call(60.0)
        victim = model._pick_victim(P.USER_11, CONTEXT_VOICE)
        assert victim.name == "Telephone"

    def test_background_with_no_apps_uses_system_process(self):
        sim, device, model = make_rig()
        victim = model._pick_victim(P.KERN_EXEC_3, CONTEXT_BACKGROUND)
        assert victim.name == "SysSrv"

    def test_background_prefers_running_app(self):
        sim, device, model = make_rig()
        device.open_app("Camera")
        victim = model._pick_victim(P.KERN_EXEC_3, CONTEXT_BACKGROUND)
        assert victim.name == "Camera"


class TestBurstsAndOutcomes:
    def test_burst_produces_cascade(self):
        config = FaultModelConfig(
            background_burst_rate=0.0,
            silent_freeze_rate=0.0,
            silent_shutdown_rate=0.0,
            burst_sizes={3: 1.0},
            outcome_policy={},  # no HL escalation: keep phone on
            visible_misbehavior_prob=0.0,
        )
        sim, device, model = make_rig(config)
        device.open_app("Camera")
        model._run_burst(CONTEXT_BACKGROUND)
        sim.run_until(sim.now + HOUR)
        assert len(recorded_panics(device)) == 3

    def test_freeze_outcome(self):
        config = FaultModelConfig(
            background_burst_rate=0.0,
            silent_freeze_rate=0.0,
            silent_shutdown_rate=0.0,
            burst_sizes={1: 1.0},
            voice_weights={P.KERN_EXEC_3: 1.0},
            outcome_policy={P.KERN_EXEC: (1.0, 1.0)},  # always freeze
        )
        sim, device, model = make_rig(config)
        device.begin_call(600.0)
        model._run_burst(CONTEXT_VOICE)
        sim.run_until(sim.now + HOUR)
        assert device.state == "frozen"
        assert model.panic_freezes == 1

    def test_self_shutdown_outcome(self):
        config = FaultModelConfig(
            background_burst_rate=0.0,
            silent_freeze_rate=0.0,
            silent_shutdown_rate=0.0,
            burst_sizes={1: 1.0},
            voice_weights={P.KERN_EXEC_3: 1.0},
            outcome_policy={P.KERN_EXEC: (1.0, 0.0)},  # always self-shutdown
        )
        sim, device, model = make_rig(config)
        device.begin_call(600.0)
        model._run_burst(CONTEXT_VOICE)
        sim.run_until(sim.now + HOUR)
        assert device.state == STATE_OFF
        assert device.shutdown_counts["self"] == 1

    def test_application_panic_contained(self):
        config = FaultModelConfig(
            background_burst_rate=0.0,
            silent_freeze_rate=0.0,
            silent_shutdown_rate=0.0,
            burst_sizes={1: 1.0},
            background_weights={P.EIKON_LISTBOX_5: 1.0},
            visible_misbehavior_prob=0.0,
        )
        sim, device, model = make_rig(config)
        device.open_app("Camera")
        model._run_burst(CONTEXT_BACKGROUND)
        sim.run_until(sim.now + HOUR)
        assert device.state == STATE_ON  # kernel contained it
        assert device.freeze_count == 0

    def test_critical_panic_reboots_mechanically(self):
        config = FaultModelConfig(
            background_burst_rate=0.0,
            silent_freeze_rate=0.0,
            silent_shutdown_rate=0.0,
            burst_sizes={1: 1.0},
            message_weights={P.MSGS_CLIENT_3: 1.0},
        )
        sim, device, model = make_rig(config)
        device.begin_message(60.0)
        model._run_burst(CONTEXT_MESSAGE)
        sim.run_until(sim.now + HOUR)
        assert device.state == STATE_OFF
        assert device.shutdown_counts["self"] == 1

    def test_idle_usage_burst_opens_an_app(self):
        config = FaultModelConfig(
            background_burst_rate=0.0,
            silent_freeze_rate=0.0,
            silent_shutdown_rate=0.0,
            burst_sizes={1: 1.0},
            idle_usage_prob=1.0,
            background_weights={P.EIKON_LISTBOX_5: 1.0},
            outcome_policy={},
            visible_misbehavior_prob=0.0,
        )
        sim, device, model = make_rig(config)
        assert device.running_apps() == ()
        model._run_burst(CONTEXT_BACKGROUND)
        assert len(device.running_apps()) == 1
        sim.run_until(sim.now + HOUR)
        assert len(recorded_panics(device)) == 1


class TestSilentFailures:
    def test_silent_freeze_fires(self):
        config = FaultModelConfig(
            background_burst_rate=0.0,
            silent_freeze_rate=1.0 / 60.0,  # about one per minute
            silent_shutdown_rate=0.0,
        )
        sim, device, model = make_rig(config)
        sim.run_until(sim.now + HOUR)
        assert model.silent_freezes >= 1
        assert device.freeze_count >= 1

    def test_silent_shutdown_fires(self):
        config = FaultModelConfig(
            background_burst_rate=0.0,
            silent_freeze_rate=0.0,
            silent_shutdown_rate=1.0 / 60.0,
        )
        sim, device, model = make_rig(config)
        sim.run_until(sim.now + 600.0)
        assert model.silent_shutdowns >= 1

    def test_stale_events_do_not_fire_across_reboots(self):
        config = FaultModelConfig(
            background_burst_rate=0.0,
            silent_freeze_rate=1.0 / (10 * HOUR),
            silent_shutdown_rate=0.0,
        )
        sim, device, model = make_rig(config)
        device.graceful_shutdown("user")
        sim.run_until(sim.now + 100 * HOUR)
        assert device.freeze_count == 0  # device off: nothing fires


class TestActivityTriggeredBursts:
    def test_call_can_trigger_burst(self):
        config = FaultModelConfig(
            background_burst_rate=0.0,
            silent_freeze_rate=0.0,
            silent_shutdown_rate=0.0,
            per_call_burst_prob=1.0,
            burst_sizes={1: 1.0},
            voice_weights={P.USER_11: 1.0},
            outcome_policy={},
            visible_misbehavior_prob=0.0,
        )
        sim, device, model = make_rig(config)
        device.begin_call(120.0)
        sim.run_until(sim.now + HOUR)
        panics = recorded_panics(device)
        assert len(panics) == 1
        assert panics[0].category == "USER"

    def test_zero_probability_never_triggers(self):
        sim, device, model = make_rig()
        device.begin_call(120.0)
        sim.run_until(sim.now + HOUR)
        assert recorded_panics(device) == []
