"""Tests for the panic registry."""

from repro.symbian import panics as P
from repro.symbian.panics import (
    PanicId,
    describe_panic,
    is_application_category,
    is_known,
    is_system_category,
    known_panics,
)


class TestRegistry:
    def test_exactly_the_papers_twenty_panics(self):
        assert len(known_panics()) == 20

    def test_table2_panics_all_registered(self):
        expected = {
            ("KERN-EXEC", 0),
            ("KERN-EXEC", 3),
            ("KERN-EXEC", 15),
            ("E32USER-CBase", 33),
            ("E32USER-CBase", 46),
            ("E32USER-CBase", 47),
            ("E32USER-CBase", 69),
            ("E32USER-CBase", 91),
            ("E32USER-CBase", 92),
            ("USER", 10),
            ("USER", 11),
            ("USER", 70),
            ("KERN-SVR", 0),
            ("ViewSrv", 11),
            ("EIKON-LISTBOX", 3),
            ("EIKON-LISTBOX", 5),
            ("Phone.app", 2),
            ("EIKCOCTL", 70),
            ("MSGS Client", 3),
            ("MMFAudioClient", 4),
        }
        actual = {
            (info.panic_id.category, info.panic_id.ptype) for info in known_panics()
        }
        assert actual == expected

    def test_registry_sorted(self):
        ids = [info.panic_id for info in known_panics()]
        assert ids == sorted(ids)

    def test_kern_exec_3_mentions_access_violations(self):
        assert "dereferencing NULL" in describe_panic(P.KERN_EXEC_3)

    def test_undocumented_panics_flagged(self):
        undocumented = [
            info.panic_id for info in known_panics() if not info.documented
        ]
        assert P.E32USER_CBASE_91 in undocumented
        assert P.E32USER_CBASE_92 in undocumented
        assert P.PHONE_APP_2 in undocumented

    def test_unknown_panic_gets_generic_description(self):
        text = describe_panic(PanicId("MYSTERY", 42))
        assert "MYSTERY 42" in text

    def test_is_known(self):
        assert is_known(P.KERN_EXEC_3)
        assert not is_known(PanicId("MYSTERY", 42))


class TestCategoryClassification:
    def test_system_categories(self):
        for category in ("KERN-EXEC", "KERN-SVR", "E32USER-CBase", "USER", "ViewSrv"):
            assert is_system_category(category)
            assert not is_application_category(category)

    def test_application_categories(self):
        for category in (
            "EIKON-LISTBOX",
            "EIKCOCTL",
            "Phone.app",
            "MSGS Client",
            "MMFAudioClient",
        ):
            assert is_application_category(category)
            assert not is_system_category(category)

    def test_every_registered_category_classified(self):
        for info in known_panics():
            category = info.panic_id.category
            assert is_system_category(category) != is_application_category(category)


class TestPanicId:
    def test_str(self):
        assert str(P.KERN_EXEC_3) == "KERN-EXEC 3"

    def test_equality_and_hash(self):
        assert PanicId("USER", 11) == P.USER_11
        assert hash(PanicId("USER", 11)) == hash(P.USER_11)

    def test_ordering(self):
        assert PanicId("A", 1) < PanicId("B", 0)
        assert PanicId("A", 1) < PanicId("A", 2)
