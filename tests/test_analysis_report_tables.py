"""Tests for table rendering and the full report."""

import pytest

from repro.analysis.report import build_report
from repro.analysis.tables import format_percent, render_table


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(("Name", "Value"), [("alpha", 1.0), ("b", 22.5)])
        lines = out.splitlines()
        assert lines[0].startswith("Name")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_numeric_right_alignment(self):
        out = render_table(("N",), [("5",), ("123",)])
        lines = out.splitlines()
        assert lines[2] == "  5"
        assert lines[3] == "123"

    def test_text_left_alignment(self):
        out = render_table(("Name",), [("ab",), ("longer",)])
        lines = out.splitlines()
        assert lines[2].startswith("ab")

    def test_dots_do_not_break_numeric_detection(self):
        out = render_table(("V",), [(".",), ("1.5",)])
        assert "1.5" in out

    def test_empty_rows(self):
        out = render_table(("A", "B"), [])
        assert len(out.splitlines()) == 2

    def test_format_percent(self):
        assert format_percent(12.345) == "12.35"
        assert format_percent(12.345, digits=1) == "12.3"


class TestFullReport:
    def test_report_sections_present(self, quick_campaign):
        text = quick_campaign.report.render()
        for fragment in (
            "Headline findings",
            "Figure 2",
            "Table 2",
            "Figure 3",
            "Figure 5",
            "Table 3",
            "Table 4",
            "Figure 6",
        ):
            assert fragment in text

    def test_headline_mentions_paper_anchors(self, quick_campaign):
        head = quick_campaign.report.render_headline()
        assert "paper: 313 h" in head
        assert "paper: 56%" in head
        assert "paper: 51%" in head

    def test_table2_lists_kern_exec(self, quick_campaign):
        assert "KERN-EXEC" in quick_campaign.report.render_table2()

    def test_figure2_reports_filter(self, quick_campaign):
        fig = quick_campaign.report.render_figure2()
        assert "self-shutdowns (<360s)" in fig
        assert "night-off mode" in fig

    def test_build_report_consistency(self, quick_campaign):
        report = build_report(quick_campaign.dataset)
        # Rebuilt from the same dataset: identical headline numbers.
        assert (
            report.availability.freeze_count
            == quick_campaign.report.availability.freeze_count
        )
        assert report.panic_table.total == quick_campaign.report.panic_table.total

    def test_hl_relationship_consistency(self, quick_campaign):
        hl = quick_campaign.report.hl
        total_from_rows = sum(row.total for row in hl.rows)
        assert total_from_rows == quick_campaign.dataset.total_panics
        for row in hl.rows:
            assert row.freeze_related + row.self_shutdown_related + row.isolated == row.total
