"""Tests for dataset ingestion."""

import random

import pytest

from repro.analysis.ingest import (
    MAX_QUARANTINE_SAMPLES,
    Dataset,
    IngestReport,
    PhoneLog,
)
from repro.analysis.streaming import CampaignAccumulator
from repro.core.errors import AnalysisError, LogFormatError
from repro.core.records import (
    ActivityRecord,
    BootRecord,
    EnrollRecord,
    PanicRecord,
    PowerRecord,
    RunningAppsRecord,
)
from repro.logger.logfile import parse_line, serialize_record
from tests.helpers import dataset_from_records, random_fleet_records


def sample_records():
    return [
        EnrollRecord(0.0, "phone-00", "8.0", "Italy"),
        BootRecord(0.0, "NONE", 0.0),
        RunningAppsRecord(0.0, ()),
        ActivityRecord(10.0, "voice_call", "start"),
        PanicRecord(20.0, "KERN-EXEC", 3, "Telephone"),
        ActivityRecord(30.0, "voice_call", "end"),
        PowerRecord(40.0, 0.9, "discharging"),
    ]


class TestIngestion:
    def test_records_sorted_into_streams(self):
        dataset = dataset_from_records({"phone-00": sample_records()}, end_time=3600)
        log = dataset.logs["phone-00"]
        assert log.enroll is not None
        assert len(log.boots) == 1
        assert len(log.panics) == 1
        assert len(log.activities) == 2
        assert len(log.runapps) == 1
        assert len(log.power) == 1
        assert log.record_count == 7

    def test_corrupt_lines_skipped(self):
        from repro.logger.logfile import serialize_record

        lines = [serialize_record(r) for r in sample_records()]
        lines.insert(2, "GARBAGE|LINE")
        dataset = Dataset.from_lines({"phone-00": lines}, end_time=3600)
        assert dataset.logs["phone-00"].record_count == 7

    def test_empty_dataset_rejected(self):
        with pytest.raises(AnalysisError):
            Dataset.from_lines({"phone-00": []}, end_time=100)

    def test_end_time_defaults_to_latest_record(self):
        dataset = dataset_from_records({"phone-00": sample_records()}, end_time=None)
        assert dataset.end_time == 40.0

    def test_invalid_end_time_rejected(self):
        with pytest.raises(AnalysisError):
            Dataset({"p": PhoneLog("p")}, end_time=0.0)

    def test_phone_ids_sorted(self):
        dataset = dataset_from_records(
            {"phone-02": sample_records(), "phone-01": sample_records()},
            end_time=3600,
        )
        assert dataset.phone_ids() == ("phone-01", "phone-02")

    def test_all_panics_ordered_globally(self):
        dataset = dataset_from_records(
            {
                "a": [BootRecord(0.0, "NONE", 0.0), PanicRecord(50.0, "USER", 11, "X")],
                "b": [BootRecord(0.0, "NONE", 0.0), PanicRecord(25.0, "USER", 10, "Y")],
            },
            end_time=100,
        )
        panics = dataset.all_panics()
        assert [p.time for _pid, p in panics] == [25.0, 50.0]
        assert dataset.total_panics == 2

    def test_observed_hours_uses_enroll_time(self):
        dataset = dataset_from_records({"phone-00": sample_records()}, end_time=7200)
        assert dataset.logs["phone-00"].observed_hours(7200) == pytest.approx(2.0)

    def test_start_time_falls_back_to_first_boot(self):
        records = sample_records()[1:]  # drop enrollment
        dataset = dataset_from_records({"phone-00": records}, end_time=3600)
        assert dataset.logs["phone-00"].start_time == 0.0

    def test_start_time_falls_back_to_earliest_record(self):
        # Corruption ate the enroll and boot records: the earliest
        # surviving timestamp is the best lower bound.
        log = PhoneLog("p")
        log.panics.append(PanicRecord(5.0, "USER", 11, "X"))
        log.activities.append(ActivityRecord(2.0, "message", "start"))
        assert log.start_time == 2.0

    def test_start_time_truly_empty_raises(self):
        with pytest.raises(AnalysisError):
            _ = PhoneLog("p").start_time

    def test_from_collector(self, quick_campaign):
        # quick_campaign's dataset was built via from_collector already;
        # verify basic invariants hold on real collected data.
        dataset = quick_campaign.dataset
        assert dataset.phone_count == 6
        assert dataset.total_observed_hours() > 0
        for log in dataset.logs.values():
            assert log.boots, "every phone boots at least once"
            assert log.enroll is not None

    def test_repr(self):
        dataset = dataset_from_records({"phone-00": sample_records()}, end_time=3600)
        assert "phones=1" in repr(dataset)


class TestStructuredDispatch:
    """The structured door's exact-type dispatch and its subclass path."""

    def test_subclass_records_route_to_base_stream(self):
        class TracedPanic(PanicRecord):
            """A PanicRecord subclass (e.g. one carrying debug extras)."""

        records = [
            BootRecord(0.0, "NONE", 0.0),
            PanicRecord(5.0, "USER", 11, "X"),
            TracedPanic(7.0, "KERN-EXEC", 3, "Y"),
            TracedPanic(9.0, "KERN-EXEC", 3, "Z"),
        ]
        dataset = Dataset.from_records({"phone-00": records}, end_time=100.0)
        log = dataset.logs["phone-00"]
        assert len(log.panics) == 3
        assert [p.process for p in log.panics] == ["X", "Y", "Z"]

    def test_unknown_record_type_raises(self):
        class Alien:
            """Not a record at all."""

            time = 1.0

        with pytest.raises(AnalysisError, match="unknown record type"):
            Dataset.from_records(
                {"phone-00": [BootRecord(0.0, "NONE", 0.0), Alien()]},
                end_time=100.0,
            )


END_TIME = 30 * 24 * 3600.0


def mutate_lines(rng: random.Random, lines):
    """Deterministically corrupt a log: truncated tails, garbled tags,
    spurious extra fields — the corruption classes real logs show."""
    mutated = []
    for line in lines:
        roll = rng.random()
        if roll < 0.15:
            mutated.append(line[: rng.randrange(1, len(line))])
        elif roll < 0.25:
            mutated.append("X" + line)
        elif roll < 0.30:
            mutated.append(line + "|junk")
        else:
            mutated.append(line)
    return mutated


def corpus_lines(seed: int, phones: int):
    """A seeded fleet's logs with seeded mutations, plus the oracle: the
    per-phone count of lines the parser must reject."""
    records = random_fleet_records(seed, phones, END_TIME)
    lines = {}
    expected_bad = {}
    for phone_id, phone_records in records.items():
        phone_lines = mutate_lines(
            random.Random(seed ^ 0x5EED),
            [serialize_record(record) for record in phone_records],
        )
        lines[phone_id] = phone_lines
        bad = 0
        for line in phone_lines:
            try:
                parse_line(line)
            except LogFormatError:
                bad += 1
        expected_bad[phone_id] = bad
    return lines, expected_bad


class TestFuzzCorpus:
    """Seeded mutation corpus: quarantine accounting stays exact and
    shard merges never lose or double-count a phone."""

    @pytest.mark.parametrize("seed", [1, 17, 2005])
    def test_quarantine_counts_exact(self, seed):
        lines, expected_bad = corpus_lines(seed, phones=6)
        dataset = Dataset.from_lines(lines, end_time=END_TIME)
        report = dataset.ingest_report
        assert report.quarantined == sum(expected_bad.values())
        assert report.by_phone == {
            pid: bad for pid, bad in expected_bad.items() if bad
        }
        assert sum(report.by_class.values()) == report.quarantined
        for phone_id, phone_lines in lines.items():
            expected_records = len(phone_lines) - expected_bad[phone_id]
            if expected_records:
                assert (
                    dataset.logs[phone_id].record_count == expected_records
                )
            else:
                assert phone_id not in dataset.logs

    @pytest.mark.parametrize("seed", [3, 2005])
    def test_corrupt_shard_boundaries_merge_exactly(self, seed):
        """Splitting a corrupt corpus at a phone boundary and merging
        the shard partials reproduces the unsplit ingest bit-for-bit:
        accumulator state, quarantine totals, and sample order."""
        lines, _expected = corpus_lines(seed, phones=6)
        full_dataset = Dataset.from_lines(lines, end_time=END_TIME)
        full_acc = CampaignAccumulator.from_dataset(full_dataset)

        phone_ids = sorted(lines)
        split = len(phone_ids) // 2
        parts = [
            Dataset.from_lines(
                {pid: lines[pid] for pid in chunk}, end_time=END_TIME
            )
            for chunk in (phone_ids[:split], phone_ids[split:])
        ]
        merged_acc = CampaignAccumulator.from_dataset(parts[0]).merge(
            CampaignAccumulator.from_dataset(parts[1])
        )
        assert merged_acc == full_acc
        assert merged_acc.sections() == full_acc.sections()

        merged_report = parts[0].ingest_report.merge(parts[1].ingest_report)
        assert merged_report.to_dict() == full_dataset.ingest_report.to_dict()

    def test_duplicate_phone_across_shards_raises(self):
        """A phone appearing in two shards is a double-count, never a
        silent merge."""
        lines, _expected = corpus_lines(7, phones=3)
        acc_a = CampaignAccumulator.from_dataset(
            Dataset.from_lines(lines, end_time=END_TIME)
        )
        overlap_id = sorted(lines)[0]
        acc_b = CampaignAccumulator.from_dataset(
            Dataset.from_lines(
                {overlap_id: lines[overlap_id]}, end_time=END_TIME
            )
        )
        with pytest.raises(AnalysisError, match="double-count"):
            acc_a.merge(acc_b)


class TestIngestReport:
    def test_merge_counts_add_exactly(self):
        a = IngestReport()
        b = IngestReport()
        boom = LogFormatError("BOOT expects 3 fields, got 2")
        for _ in range(3):
            a.quarantine("phone-00", "BOOT|1.0", boom)
        for _ in range(2):
            b.quarantine("phone-00", "BOOT|2.0", boom)
        b.quarantine("phone-01", "junk", LogFormatError("unknown tag"))
        merged = a.merge(b)
        assert merged.quarantined == 6
        assert merged.by_phone == {"phone-00": 5, "phone-01": 1}
        assert sum(merged.by_class.values()) == 6
        assert not merged.clean

    def test_merge_caps_samples(self):
        a = IngestReport()
        b = IngestReport()
        boom = LogFormatError("unknown tag")
        for index in range(MAX_QUARANTINE_SAMPLES):
            a.quarantine("phone-00", f"a{index}", boom)
            b.quarantine("phone-01", f"b{index}", boom)
        merged = a.merge(b)
        assert len(merged.samples) == MAX_QUARANTINE_SAMPLES
        assert merged.samples == a.samples

    def test_wire_round_trip(self):
        report = IngestReport()
        report.quarantine("phone-00", "junk", LogFormatError("unknown tag"))
        revived = IngestReport.from_dict(report.to_dict())
        assert revived.to_dict() == report.to_dict()
