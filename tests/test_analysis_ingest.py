"""Tests for dataset ingestion."""

import pytest

from repro.analysis.ingest import Dataset, PhoneLog
from repro.core.errors import AnalysisError
from repro.core.records import (
    ActivityRecord,
    BootRecord,
    EnrollRecord,
    PanicRecord,
    PowerRecord,
    RunningAppsRecord,
)
from tests.helpers import dataset_from_records


def sample_records():
    return [
        EnrollRecord(0.0, "phone-00", "8.0", "Italy"),
        BootRecord(0.0, "NONE", 0.0),
        RunningAppsRecord(0.0, ()),
        ActivityRecord(10.0, "voice_call", "start"),
        PanicRecord(20.0, "KERN-EXEC", 3, "Telephone"),
        ActivityRecord(30.0, "voice_call", "end"),
        PowerRecord(40.0, 0.9, "discharging"),
    ]


class TestIngestion:
    def test_records_sorted_into_streams(self):
        dataset = dataset_from_records({"phone-00": sample_records()}, end_time=3600)
        log = dataset.logs["phone-00"]
        assert log.enroll is not None
        assert len(log.boots) == 1
        assert len(log.panics) == 1
        assert len(log.activities) == 2
        assert len(log.runapps) == 1
        assert len(log.power) == 1
        assert log.record_count == 7

    def test_corrupt_lines_skipped(self):
        from repro.logger.logfile import serialize_record

        lines = [serialize_record(r) for r in sample_records()]
        lines.insert(2, "GARBAGE|LINE")
        dataset = Dataset.from_lines({"phone-00": lines}, end_time=3600)
        assert dataset.logs["phone-00"].record_count == 7

    def test_empty_dataset_rejected(self):
        with pytest.raises(AnalysisError):
            Dataset.from_lines({"phone-00": []}, end_time=100)

    def test_end_time_defaults_to_latest_record(self):
        dataset = dataset_from_records({"phone-00": sample_records()}, end_time=None)
        assert dataset.end_time == 40.0

    def test_invalid_end_time_rejected(self):
        with pytest.raises(AnalysisError):
            Dataset({"p": PhoneLog("p")}, end_time=0.0)

    def test_phone_ids_sorted(self):
        dataset = dataset_from_records(
            {"phone-02": sample_records(), "phone-01": sample_records()},
            end_time=3600,
        )
        assert dataset.phone_ids() == ("phone-01", "phone-02")

    def test_all_panics_ordered_globally(self):
        dataset = dataset_from_records(
            {
                "a": [BootRecord(0.0, "NONE", 0.0), PanicRecord(50.0, "USER", 11, "X")],
                "b": [BootRecord(0.0, "NONE", 0.0), PanicRecord(25.0, "USER", 10, "Y")],
            },
            end_time=100,
        )
        panics = dataset.all_panics()
        assert [p.time for _pid, p in panics] == [25.0, 50.0]
        assert dataset.total_panics == 2

    def test_observed_hours_uses_enroll_time(self):
        dataset = dataset_from_records({"phone-00": sample_records()}, end_time=7200)
        assert dataset.logs["phone-00"].observed_hours(7200) == pytest.approx(2.0)

    def test_start_time_falls_back_to_first_boot(self):
        records = sample_records()[1:]  # drop enrollment
        dataset = dataset_from_records({"phone-00": records}, end_time=3600)
        assert dataset.logs["phone-00"].start_time == 0.0

    def test_start_time_falls_back_to_earliest_record(self):
        # Corruption ate the enroll and boot records: the earliest
        # surviving timestamp is the best lower bound.
        log = PhoneLog("p")
        log.panics.append(PanicRecord(5.0, "USER", 11, "X"))
        log.activities.append(ActivityRecord(2.0, "message", "start"))
        assert log.start_time == 2.0

    def test_start_time_truly_empty_raises(self):
        with pytest.raises(AnalysisError):
            _ = PhoneLog("p").start_time

    def test_from_collector(self, quick_campaign):
        # quick_campaign's dataset was built via from_collector already;
        # verify basic invariants hold on real collected data.
        dataset = quick_campaign.dataset
        assert dataset.phone_count == 6
        assert dataset.total_observed_hours() > 0
        for log in dataset.logs.values():
            assert log.boots, "every phone boots at least once"
            assert log.enroll is not None

    def test_repr(self):
        dataset = dataset_from_records({"phone-00": sample_records()}, end_time=3600)
        assert "phones=1" in repr(dataset)
